// Command experiments regenerates the paper's evaluation artifacts.
//
// Usage:
//
//	experiments -table 1 [-scale 0.2]
//	experiments -table 2 [-scale 0.1] [-seeds 3] [-k 16,32,64] [-matrices ken-11,cq9]
//	experiments -figure 1
//
// Scale shrinks the synthetic catalog matrices proportionally (1 =
// paper-size); volumes are scaled by the matrix dimension, so results at
// reduced scale remain comparable in shape to the paper's Table 2.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"finegrain/internal/experiments"
)

func main() {
	table := flag.Int("table", 0, "regenerate Table 1 or 2")
	figure := flag.Int("figure", 0, "regenerate Figure 1")
	scale := flag.Float64("scale", 0.1, "matrix scale factor (1 = paper size)")
	seeds := flag.Int("seeds", 3, "partitioner seeds averaged per instance (paper: 50)")
	ks := flag.String("k", "16,32,64", "comma-separated processor counts")
	matrices := flag.String("matrices", "", "comma-separated catalog names (default: all 14)")
	workers := flag.Int("workers", 0, "partitioner goroutines per instance (0 = GOMAXPROCS); results are identical for any value")
	stats := flag.Bool("stats", false, "aggregate and print partitioner per-phase statistics")
	quiet := flag.Bool("quiet", false, "suppress per-instance progress lines")
	flag.Parse()

	switch {
	case *table == 1:
		experiments.WriteTable1(os.Stdout, experiments.Table1(*scale))
	case *table == 2:
		cfg := experiments.Table2Config{
			Scale:        *scale,
			Seeds:        *seeds,
			Ks:           parseInts(*ks),
			Workers:      *workers,
			CollectStats: *stats,
		}
		if *matrices != "" {
			cfg.Matrices = strings.Split(*matrices, ",")
		}
		if !*quiet {
			cfg.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
		}
		res, err := experiments.Table2(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		experiments.WriteTable2(os.Stdout, res)
	case *figure == 1:
		if err := experiments.WriteFigure1(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func parseInts(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		x, err := strconv.Atoi(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: bad -k value %q\n", f)
			os.Exit(2)
		}
		out = append(out, x)
	}
	return out
}
