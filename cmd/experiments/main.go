// Command experiments regenerates the paper's evaluation artifacts.
//
// Usage:
//
//	experiments -table 1 [-scale 0.2]
//	experiments -table 2 [-scale 0.1] [-seeds 3] [-k 16,32,64] [-matrices ken-11,cq9]
//	experiments -figure 1
//	experiments -planbench nl [-scale 0.1] [-k 64] [-iters 50]
//	experiments -localitybench nl [-scale 1] [-k 64] [-iters 50]
//	experiments -compare [-scale 0.1] [-k 16,32,64] [-matrices ken-11,cq9] [-seeds 3]
//	experiments -spgemmbench [-scale 0.1] [-k 4,16] [-matrices ken-11,cq9] [-json BENCH_spgemm.json]
//
// The -compare mode runs the medium-grain vs fine-grain vs 1D model
// comparison (cut objective next to realized scaled volume per model).
// The -spgemmbench mode sweeps both SpGEMM hypergraph models over
// C = A·A on square catalog matrices, re-asserting in every cell that
// the simulated Sparse-SUMMA executor's traffic equals the model's
// cutsize-derived prediction, and writes the figures to the path given
// by -json (default BENCH_spgemm.json; empty writes no artifact).
//
// The -planbench mode times the plan/execute split directly: it
// decomposes one catalog matrix, then multiplies -iters times first
// through the per-call API (which recompiles the communication plan
// every multiply) and then through a reused Multiplier (which compiles
// once), reporting the amortized speedup an iterative solver sees.
//
// Scale shrinks the synthetic catalog matrices proportionally (1 =
// paper-size); volumes are scaled by the matrix dimension, so results at
// reduced scale remain comparable in shape to the paper's Table 2.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	finegrain "finegrain"
	"finegrain/internal/experiments"
	"finegrain/internal/kernel"
	"finegrain/internal/reorder"
)

func main() {
	table := flag.Int("table", 0, "regenerate Table 1 or 2")
	figure := flag.Int("figure", 0, "regenerate Figure 1")
	scale := flag.Float64("scale", 0.1, "matrix scale factor (1 = paper size)")
	seeds := flag.Int("seeds", 3, "partitioner seeds averaged per instance (paper: 50)")
	ks := flag.String("k", "16,32,64", "comma-separated processor counts")
	matrices := flag.String("matrices", "", "comma-separated catalog names (default: all 14)")
	workers := flag.Int("workers", 0, "partitioner goroutines per instance (0 = GOMAXPROCS); results are identical for any value")
	stats := flag.Bool("stats", false, "aggregate and print partitioner per-phase statistics")
	quiet := flag.Bool("quiet", false, "suppress per-instance progress lines")
	planBench := flag.String("planbench", "", "catalog matrix: time per-call Multiply vs a reused Multiplier")
	localityBench := flag.String("localitybench", "", "catalog matrix: time the real kernel, natural vs cache-blocked reordering")
	iters := flag.Int("iters", 50, "multiplies per timing in -planbench/-localitybench")
	compare := flag.Bool("compare", false, "compare the 1D, fine-grain and medium-grain SpMV models")
	spgemmBench := flag.Bool("spgemmbench", false, "sweep the SpGEMM hypergraph models over C=A·A with the simulated executor")
	jsonOut := flag.String("json", "BENCH_spgemm.json", "artifact path for -spgemmbench (empty = none)")
	flag.Parse()

	switch {
	case *spgemmBench:
		cfg := experiments.SpGEMMBenchConfig{Scale: *scale, Ks: parseInts(*ks), Workers: *workers}
		if *matrices != "" {
			cfg.Matrices = strings.Split(*matrices, ",")
		}
		if !*quiet {
			cfg.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
		}
		rep, err := experiments.SpGEMMBench(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		experiments.WriteSpGEMMBench(os.Stdout, rep)
		if *jsonOut != "" {
			data, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *jsonOut)
		}
	case *compare:
		cfg := experiments.Table2Config{
			Scale:   *scale,
			Seeds:   *seeds,
			Ks:      parseInts(*ks),
			Workers: *workers,
		}
		if *matrices != "" {
			cfg.Matrices = strings.Split(*matrices, ",")
		}
		if !*quiet {
			cfg.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
		}
		rows, err := experiments.Compare(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		experiments.WriteCompare(os.Stdout, rows)
	case *planBench != "":
		k := 64
		if ks := parseInts(*ks); len(ks) > 0 {
			k = ks[0]
		}
		if err := runPlanBench(*planBench, *scale, k, *iters); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	case *localityBench != "":
		k := 64
		if ks := parseInts(*ks); len(ks) > 0 {
			k = ks[0]
		}
		if err := runLocalityBench(*localityBench, *scale, k, *iters); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	case *table == 1:
		experiments.WriteTable1(os.Stdout, experiments.Table1(*scale))
	case *table == 2:
		cfg := experiments.Table2Config{
			Scale:        *scale,
			Seeds:        *seeds,
			Ks:           parseInts(*ks),
			Workers:      *workers,
			CollectStats: *stats,
		}
		if *matrices != "" {
			cfg.Matrices = strings.Split(*matrices, ",")
		}
		if !*quiet {
			cfg.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
		}
		res, err := experiments.Table2(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		experiments.WriteTable2(os.Stdout, res)
	case *figure == 1:
		if err := experiments.WriteFigure1(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// runPlanBench measures what an iterative solver gains from the
// plan/execute split on one decomposition.
func runPlanBench(catalog string, scale float64, k, iters int) error {
	a, err := finegrain.Generate(catalog, scale, 1)
	if err != nil {
		return err
	}
	dec, err := finegrain.Decompose2D(a, k, finegrain.Options{Seed: 1})
	if err != nil {
		return err
	}
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = 1 / float64(i+1)
	}

	// Per-call path: every multiply recompiles the plan.
	if _, err := finegrain.Multiply(dec, x); err != nil { // warm-up
		return err
	}
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := finegrain.Multiply(dec, x); err != nil {
			return err
		}
	}
	perCall := time.Since(t0) / time.Duration(iters)

	// Reused-plan path: compile once, execute per iteration.
	mul, err := finegrain.NewMultiplier(dec)
	if err != nil {
		return err
	}
	defer mul.Close()
	if _, err := mul.Multiply(x); err != nil { // warm-up
		return err
	}
	t1 := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := mul.Multiply(x); err != nil {
			return err
		}
	}
	reused := time.Since(t1) / time.Duration(iters)

	ctr := mul.Counters()
	fmt.Printf("planbench %s scale=%g K=%d n=%d nnz=%d\n", catalog, scale, k, a.Rows, a.NNZ())
	fmt.Printf("  words per multiply:  %d (expand+fold, == connectivity−1 cutsize)\n", ctr.TotalWords())
	fmt.Printf("  per-call Multiply:   %v/op (compiles the plan every call)\n", perCall)
	fmt.Printf("  reused Multiplier:   %v/op (plan compiled once)\n", reused)
	fmt.Printf("  amortized speedup:   %.1fx\n", float64(perCall)/float64(reused))
	return nil
}

// runLocalityBench measures what the cache-blocking reordering buys on
// real hardware: the same matrix multiplied by the real kernel in
// natural order and in the locality model's permuted order.
func runLocalityBench(catalog string, scale float64, k, iters int) error {
	a, err := finegrain.Generate(catalog, scale, 1)
	if err != nil {
		return err
	}
	dec, err := finegrain.DecomposeLocality(a, k, finegrain.Options{Seed: 1})
	if err != nil {
		return err
	}
	_, perm, err := finegrain.Reorder(dec, finegrain.Options{})
	if err != nil {
		return err
	}
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = 1 / float64(i+1)
	}
	xp := make([]float64, a.Cols) // x in permuted space, permuted once
	reorder.ApplyVec(xp, x, perm.Col)
	y := make([]float64, a.Rows)
	flops := 2 * float64(a.NNZ())

	natural, err := kernel.NewPlan(a, nil, kernel.Options{})
	if err != nil {
		return err
	}
	defer natural.Close()
	reordered, err := kernel.NewPlan(a, perm, kernel.Options{})
	if err != nil {
		return err
	}
	defer reordered.Close()

	// Both layouts run in steady state (vectors stay in the plan's
	// space, as an iterative solver keeps them), in interleaved rounds
	// so noise on shared hosts hits both sides alike.
	opts := kernel.ExecOptions{}
	if err := natural.Exec(x, y, opts); err != nil { // warm-up
		return err
	}
	if err := reordered.Exec(xp, y, opts); err != nil {
		return err
	}
	var nsNat, nsReord float64
	for round := 0; round < 3; round++ {
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			if err := natural.Exec(x, y, opts); err != nil {
				return err
			}
		}
		ns := float64(time.Since(t0).Nanoseconds()) / float64(iters)
		if nsNat == 0 || ns < nsNat {
			nsNat = ns
		}
		t0 = time.Now()
		for i := 0; i < iters; i++ {
			if err := reordered.Exec(xp, y, opts); err != nil {
				return err
			}
		}
		ns = float64(time.Since(t0).Nanoseconds()) / float64(iters)
		if nsReord == 0 || ns < nsReord {
			nsReord = ns
		}
	}
	fmt.Printf("localitybench %s scale=%g K=%d n=%d nnz=%d gomaxprocs=%d\n",
		catalog, scale, k, a.Rows, a.NNZ(), runtime.GOMAXPROCS(0))
	fmt.Printf("  natural:   %12.0f ns/op  %6.3f GFLOP/s\n", nsNat, flops/nsNat)
	fmt.Printf("  reordered: %12.0f ns/op  %6.3f GFLOP/s\n", nsReord, flops/nsReord)
	fmt.Printf("  speedup:   %.2fx\n", nsNat/nsReord)
	return nil
}

func parseInts(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		x, err := strconv.Atoi(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: bad -k value %q\n", f)
			os.Exit(2)
		}
		out = append(out, x)
	}
	return out
}
