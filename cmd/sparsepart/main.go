// Command sparsepart decomposes a sparse matrix for parallel
// matrix-vector multiplication and reports the communication profile.
//
// The matrix comes either from a Matrix Market file (-in) or from the
// synthetic catalog (-gen, -scale). The model is one of the paper's
// three: finegrain (2D, proposed), hypergraph (1D column-net) or graph
// (1D standard graph).
//
// Usage:
//
//	sparsepart -gen ken-11 -scale 0.1 -k 16 -model finegrain
//	sparsepart -in matrix.mtx -k 8 -model hypergraph -verify
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	finegrain "finegrain"
	"finegrain/internal/mmio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sparsepart: ")
	in := flag.String("in", "", "Matrix Market file to decompose")
	gen := flag.String("gen", "", "catalog matrix to synthesize instead of -in")
	scale := flag.Float64("scale", 0.1, "scale for -gen (1 = paper size)")
	genSeed := flag.Uint64("gen-seed", 1, "generation seed for -gen")
	k := flag.Int("k", 16, "number of processors")
	model := flag.String("model", "finegrain", "decomposition model: finegrain | hypergraph | graph")
	seed := flag.Uint64("seed", 1, "partitioner seed")
	eps := flag.Float64("eps", 0.03, "allowed load imbalance ε")
	workers := flag.Int("workers", 0, "partitioner goroutines (0 = GOMAXPROCS); result is identical for any value")
	stats := flag.Bool("stats", false, "print per-phase partitioner statistics (hypergraph models)")
	verify := flag.Bool("verify", false, "execute y=Ax on simulated processors and verify")
	save := flag.String("save", "", "write the decomposition's ownership arrays as JSON")
	spy := flag.Int("spy", 0, "print an ASCII spy plot of the decomposition at this resolution")
	flag.Parse()

	var a *finegrain.Matrix
	var err error
	switch {
	case *in != "" && *gen != "":
		log.Fatal("use either -in or -gen, not both")
	case *in != "":
		a, err = mmio.ReadFile(*in)
		if err != nil {
			log.Fatal(err)
		}
		if a.Rows != a.Cols {
			log.Fatalf("matrix is %dx%d; the decomposition models need a square matrix", a.Rows, a.Cols)
		}
		a = a.EnsureNonemptyRowsCols()
	case *gen != "":
		a, err = finegrain.Generate(*gen, *scale, *genSeed)
		if err != nil {
			log.Fatal(err)
		}
	default:
		flag.Usage()
		fmt.Fprintf(os.Stderr, "\ncatalog matrices: %v\n", finegrain.CatalogNames())
		os.Exit(2)
	}

	st := a.ComputeStats()
	fmt.Printf("matrix: n=%d nnz=%d degrees [%d..%d] avg %.2f\n",
		st.Rows, st.NNZ, st.PooledMin, st.PooledMax, st.PooledAvg)

	opts := finegrain.Options{Seed: *seed, Eps: *eps, Workers: *workers, CollectStats: *stats}
	var dec *finegrain.Decomposition
	switch *model {
	case "finegrain", "2d":
		dec, err = finegrain.Decompose2D(a, *k, opts)
	case "hypergraph", "1d":
		dec, err = finegrain.Decompose1D(a, *k, opts)
	case "graph":
		dec, err = finegrain.Decompose1DGraph(a, *k, opts)
	default:
		log.Fatalf("unknown model %q (want finegrain, hypergraph or graph)", *model)
	}
	if err != nil {
		log.Fatal(err)
	}

	s := dec.Stats
	fmt.Printf("model=%s K=%d\n", *model, *k)
	fmt.Printf("  cutsize:         %d\n", dec.Cutsize)
	fmt.Printf("  total volume:    %d words (expand %d + fold %d), scaled %.4f\n",
		s.TotalVolume, s.ExpandVolume, s.FoldVolume, s.ScaledTotalVolume(a.Rows))
	fmt.Printf("  max send volume: %d words (scaled %.4f)\n", s.MaxSendVolume, s.ScaledMaxVolume(a.Rows))
	fmt.Printf("  messages:        %d total, %.2f avg per processor, %d max handled\n",
		s.TotalMessages, s.AvgMessagesPerProc, s.MaxMessagesPerProc)
	fmt.Printf("  load imbalance:  %.2f%% (max %d of avg %.1f multiplies)\n",
		s.ImbalancePct, s.MaxLoad, float64(st.NNZ)/float64(*k))

	if *stats {
		if dec.PartStats != nil {
			fmt.Print(dec.PartStats.String())
		} else {
			fmt.Println("  (no partitioner statistics: the graph model does not collect them)")
		}
	}

	if *spy > 0 {
		fmt.Print(finegrain.RenderSpy(dec.Assignment, *spy))
	}

	if *save != "" {
		if err := finegrain.SaveAssignment(*save, dec.Assignment); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  saved decomposition to %s\n", *save)
	}

	if *verify {
		x := make([]float64, a.Cols)
		for i := range x {
			x[i] = 1 / float64(i+1)
		}
		if err := finegrain.Verify(a, dec, x); err != nil {
			log.Fatal(err)
		}
		fmt.Println("  verified: simulated parallel multiply matches the serial kernel,")
		fmt.Println("            and moved words equal the analytic volume ✓")
	}
}
