// Command sparsepart decomposes a sparse matrix for parallel
// matrix-vector multiplication and reports the communication profile.
//
// The matrix comes either from a Matrix Market file (-in) or from the
// synthetic catalog (-gen, -scale). The model is one of the paper's
// three: finegrain (2D, proposed), hypergraph (1D column-net) or graph
// (1D standard graph).
//
// Usage:
//
//	sparsepart -gen ken-11 -scale 0.1 -k 16 -model finegrain
//	sparsepart -in matrix.mtx -k 8 -model hypergraph -verify
//
// A decomposition saved with -save can be re-analyzed later without
// re-partitioning (the CLI twin of the partition server's cache hit):
//
//	sparsepart -gen ken-11 -scale 0.1 -k 16 -save decomp.json
//	sparsepart -gen ken-11 -scale 0.1 -load decomp.json -verify
//
// With -trace, the run's phase spans (coarsening levels, FM passes,
// recursion branches) are written as Chrome trace-event JSON that
// https://ui.perfetto.dev renders as a timeline. See OBSERVABILITY.md.
//
// With -solve N, the decomposition is compiled into a solver session
// and block conjugate gradient runs over N right-hand sides in one
// batch: the per-sweep message count stays that of a single solve
// while each message carries N words. CG assumes the matrix is
// symmetric positive definite; non-convergence is reported per
// right-hand side, not as an error.
//
//	sparsepart -in spd.mtx -k 16 -solve 8
//
// With -reorder, the decomposition is decoded a second way — as a
// cache-blocking row/column permutation (model "locality") — and the
// reordered matrix is written in Matrix Market format (gzip-aware, by
// the .gz suffix) with the permutation as a sidecar .perm file.
// -measure times the real multithreaded kernel on both layouts and
// reports wall-clock GFLOP/s:
//
//	sparsepart -gen nl -scale 1 -k 8 -model locality -reorder nl-reordered.mtx.gz -measure
//
// With -spgemm, the decomposition target is the sparse matrix product
// C = A·B instead of SpMV: A comes from -in/-gen as usual, B from the
// flag's Matrix Market file ("self" squares A). The partition is run
// through the simulated Sparse-SUMMA-style executor and the realized
// words and messages are checked against the model's cutsize-derived
// prediction — they must match exactly:
//
//	sparsepart -gen ken-11 -scale 0.1 -k 16 -model spgemm -spgemm self
//	sparsepart -in A.mtx -spgemm B.mtx -k 8 -model spgemm_1d
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"time"

	finegrain "finegrain"
	"finegrain/internal/kernel"
	"finegrain/internal/mmio"
	"finegrain/internal/reorder"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sparsepart: ")
	in := flag.String("in", "", "Matrix Market file to decompose")
	gen := flag.String("gen", "", "catalog matrix to synthesize instead of -in")
	scale := flag.Float64("scale", 0.1, "scale for -gen (1 = paper size)")
	genSeed := flag.Uint64("gen-seed", 1, "generation seed for -gen")
	k := flag.Int("k", 16, "number of processors")
	model := flag.String("model", "finegrain", "decomposition model: "+strings.Join(finegrain.ModelNames(), " | "))
	listModels := flag.Bool("models", false, "list the decomposition models and exit")
	seed := flag.Uint64("seed", 1, "partitioner seed")
	eps := flag.Float64("eps", 0.03, "allowed load imbalance ε")
	workers := flag.Int("workers", 0, "partitioner goroutines (0 = GOMAXPROCS); result is identical for any value")
	stats := flag.Bool("stats", false, "print per-phase partitioner statistics (hypergraph models)")
	verify := flag.Bool("verify", false, "execute y=Ax on simulated processors and verify")
	solveN := flag.Int("solve", 0, "run block conjugate gradient with this many right-hand sides and report per-RHS convergence and the amortized traffic")
	save := flag.String("save", "", "write the decomposition's ownership arrays as JSON")
	load := flag.String("load", "", "re-analyze a previously -save'd decomposition instead of partitioning")
	spy := flag.Int("spy", 0, "print an ASCII spy plot of the decomposition at this resolution")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON of the run to this file (open in ui.perfetto.dev)")
	reorderOut := flag.String("reorder", "", "write the cache-blocking reordered matrix to this .mtx[.gz] file, with the permutation as a sidecar .perm file")
	measure := flag.Bool("measure", false, "run the real multithreaded kernel and report GFLOP/s, reordered vs. natural order")
	spgemmB := flag.String("spgemm", "", "decompose the product C = A·B instead of SpMV: B's Matrix Market file, or \"self\" for C = A·A (with -model spgemm or spgemm_1d)")
	flag.Parse()

	if *listModels {
		for _, m := range finegrain.Models() {
			name := m.Name
			if len(m.Aliases) > 0 {
				name += " (" + strings.Join(m.Aliases, ", ") + ")"
			}
			fmt.Printf("%-20s %s\n", name, m.Description)
		}
		return
	}

	var a *finegrain.Matrix
	var err error
	switch {
	case *in != "" && *gen != "":
		log.Fatal("use either -in or -gen, not both")
	case *in != "":
		a, err = mmio.ReadFile(*in)
		if err != nil {
			log.Fatal(err)
		}
		// The SpGEMM models accept rectangular operands and tolerate
		// empty rows; the SpMV models need a square, padded matrix.
		if *spgemmB == "" {
			if a.Rows != a.Cols {
				log.Fatalf("matrix is %dx%d; the decomposition models need a square matrix", a.Rows, a.Cols)
			}
			a = a.EnsureNonemptyRowsCols()
		}
	case *gen != "":
		a, err = finegrain.Generate(*gen, *scale, *genSeed)
		if err != nil {
			log.Fatal(err)
		}
	default:
		flag.Usage()
		fmt.Fprintf(os.Stderr, "\ncatalog matrices: %v\n", finegrain.CatalogNames())
		os.Exit(2)
	}

	st := a.ComputeStats()
	fmt.Printf("matrix: n=%d nnz=%d degrees [%d..%d] avg %.2f\n",
		st.Rows, st.NNZ, st.PooledMin, st.PooledMax, st.PooledAvg)

	var tr *finegrain.Trace
	if *traceOut != "" {
		tr = finegrain.NewTrace()
	}

	var dec *finegrain.Decomposition
	if *load != "" {
		// Re-analysis: bind the saved ownership arrays to the matrix and
		// recompute the communication profile — no partitioning runs.
		asg, err := finegrain.LoadAssignment(*load, a)
		if err != nil {
			log.Fatal(err)
		}
		st, err := finegrain.Measure(asg)
		if err != nil {
			log.Fatal(err)
		}
		// For the hypergraph models the connectivity−1 cutsize equals the
		// total volume exactly; for a graph-model decomposition the edge
		// cut is not recoverable from ownership, so the measured volume is
		// the honest figure either way.
		dec = &finegrain.Decomposition{Assignment: asg, Stats: st, Cutsize: st.TotalVolume}
		fmt.Printf("loaded decomposition %s\n", *load)
	} else if *spgemmB != "" {
		b := a
		if *spgemmB != "self" {
			b, err = mmio.ReadFile(*spgemmB)
			if err != nil {
				log.Fatal(err)
			}
		}
		opts := finegrain.Options{Seed: *seed, Eps: *eps, Workers: *workers, CollectStats: *stats, Trace: tr}
		switch *model {
		case "spgemm", "finegrain": // default -model with -spgemm means the fine-grain SpGEMM model
			dec, err = finegrain.DecomposeSpGEMM(a, b, *k, opts)
		case "spgemm_1d":
			dec, err = finegrain.DecomposeSpGEMM1D(a, b, *k, opts)
		default:
			log.Fatalf("-spgemm works with -model spgemm or spgemm_1d, not %q", *model)
		}
		if err != nil {
			log.Fatal(err)
		}
	} else {
		dec, err = finegrain.DecomposeModel(*model, a,
			*k, finegrain.Options{Seed: *seed, Eps: *eps, Workers: *workers, CollectStats: *stats, Trace: tr})
		if err != nil {
			log.Fatal(err)
		}
	}

	if dec.SpGEMM != nil {
		// SpGEMM decompositions own A, B and C elements instead of one
		// matrix plus vectors; the SpMV post-processing flags do not apply.
		if *verify || *solveN > 0 || *save != "" || *spy > 0 || *reorderOut != "" || *measure {
			log.Fatal("-verify, -solve, -save, -spy, -reorder and -measure apply to SpMV decompositions, not spgemm")
		}
		if err := reportSpGEMM(dec); err != nil {
			log.Fatal(err)
		}
		if *stats && dec.PartStats != nil {
			fmt.Print(dec.PartStats.String())
		}
		writeTrace(tr, *traceOut)
		return
	}

	kUsed := dec.Assignment.K
	s := dec.Stats
	if *load != "" {
		fmt.Printf("K=%d\n", kUsed)
	} else if *model == "auto" {
		d := finegrain.SelectModel(a)
		fmt.Printf("model=auto -> %s K=%d (%s)\n", dec.Model, kUsed, d.Reason)
	} else {
		fmt.Printf("model=%s K=%d\n", dec.Model, kUsed)
	}
	fmt.Printf("  cutsize:         %d\n", dec.Cutsize)
	fmt.Printf("  total volume:    %d words (expand %d + fold %d), scaled %.4f\n",
		s.TotalVolume, s.ExpandVolume, s.FoldVolume, s.ScaledTotalVolume(a.Rows))
	fmt.Printf("  max send volume: %d words (scaled %.4f)\n", s.MaxSendVolume, s.ScaledMaxVolume(a.Rows))
	fmt.Printf("  messages:        %d total, %.2f avg per processor, %d max handled\n",
		s.TotalMessages, s.AvgMessagesPerProc, s.MaxMessagesPerProc)
	fmt.Printf("  load imbalance:  %.2f%% (max %d of avg %.1f multiplies)\n",
		s.ImbalancePct, s.MaxLoad, float64(st.NNZ)/float64(kUsed))

	if *stats {
		if dec.PartStats != nil {
			fmt.Print(dec.PartStats.String())
		} else {
			fmt.Println("  (no partitioner statistics: the graph model does not collect them)")
		}
	}

	if *spy > 0 {
		fmt.Print(finegrain.RenderSpy(dec.Assignment, *spy))
	}

	if *save != "" {
		if err := finegrain.SaveAssignment(*save, dec.Assignment); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  saved decomposition to %s\n", *save)
	}

	if *verify {
		x := make([]float64, a.Cols)
		for i := range x {
			x[i] = 1 / float64(i+1)
		}
		if err := finegrain.Verify(a, dec, x); err != nil {
			log.Fatal(err)
		}
		fmt.Println("  verified: simulated parallel multiply matches the serial kernel,")
		fmt.Println("            and moved words equal the analytic volume ✓")
	}

	if *solveN > 0 {
		if err := runSolve(dec, *solveN, *workers, tr); err != nil {
			log.Fatal(err)
		}
	}

	if *reorderOut != "" || *measure {
		b, perm, err := finegrain.Reorder(dec, finegrain.Options{Trace: tr})
		if err != nil {
			log.Fatal(err)
		}
		if *reorderOut != "" {
			if err := mmio.WriteFile(*reorderOut, b); err != nil {
				log.Fatal(err)
			}
			permPath := *reorderOut + ".perm"
			if err := reorder.WritePermFile(permPath, perm); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  wrote reordered matrix to %s (permutation sidecar: %s)\n", *reorderOut, permPath)
		}
		if *measure {
			if err := runMeasure(a, perm, tr); err != nil {
				log.Fatal(err)
			}
		}
	}

	writeTrace(tr, *traceOut)
}

// writeTrace flushes the run's spans as Chrome trace-event JSON (no-op
// without -trace).
func writeTrace(tr *finegrain.Trace, path string) {
	if tr == nil {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := tr.WriteJSON(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d trace events to %s\n", tr.Len(), path)
}

// reportSpGEMM prints an SpGEMM decomposition's communication profile,
// then runs it through the simulated Sparse-SUMMA-style executor and
// checks the realized traffic against the analytic profile and the
// executed product against the serial kernel — the package's exactness
// guarantee, enforced on every CLI run.
func reportSpGEMM(dec *finegrain.Decomposition) error {
	asg := dec.SpGEMM
	s := dec.Stats
	fmt.Printf("model=%s K=%d  C: %dx%d nnz=%d, %d multiply tasks\n",
		dec.Model, asg.K, asg.C.Rows, asg.C.Cols, asg.C.NNZ(), len(asg.TaskOwner))
	fmt.Printf("  cutsize:         %d\n", dec.Cutsize)
	fmt.Printf("  total volume:    %d words (expand %d + fold %d)\n",
		s.TotalVolume, s.ExpandVolume, s.FoldVolume)
	fmt.Printf("  max send volume: %d words\n", s.MaxSendVolume)
	fmt.Printf("  messages:        %d total, %.2f avg per processor, %d max handled\n",
		s.TotalMessages, s.AvgMessagesPerProc, s.MaxMessagesPerProc)
	fmt.Printf("  load imbalance:  %.2f%% (max %d of avg %.1f multiplies)\n",
		s.ImbalancePct, s.MaxLoad, float64(len(asg.TaskOwner))/float64(asg.K))

	res, err := finegrain.ExecuteSpGEMM(dec)
	if err != nil {
		return err
	}
	if res.TotalWords() != s.TotalVolume ||
		res.ExpandMessages != s.ExpandMessages || res.FoldMessages != s.FoldMessages {
		return fmt.Errorf("executor moved %d words / %d+%d messages; model predicted %d / %d+%d",
			res.TotalWords(), res.ExpandMessages, res.FoldMessages,
			s.TotalVolume, s.ExpandMessages, s.FoldMessages)
	}
	for p := range asg.C.Val {
		diff := res.C.Val[p] - asg.C.Val[p]
		if diff < 0 {
			diff = -diff
		}
		scale := asg.C.Val[p]
		if scale < 0 {
			scale = -scale
		}
		if scale < 1 {
			scale = 1
		}
		if diff > 1e-9*scale {
			return fmt.Errorf("executed c value %g at position %d, serial %g", res.C.Val[p], p, asg.C.Val[p])
		}
	}
	fmt.Println("  verified: simulated SpGEMM moved exactly the predicted words and messages,")
	fmt.Println("            and the executed product matches the serial kernel ✓")
	return nil
}

// runSolve opens a Session on the decomposition and runs one block-CG
// solve over n deterministic right-hand sides, reporting each vector's
// trajectory and the amortization the block path buys: messages are
// paid once per sweep regardless of the batch width, so n solo solves
// would send roughly n times the messages for the same answers.
func runSolve(dec *finegrain.Decomposition, n, workers int, tr *finegrain.Trace) error {
	sess, err := finegrain.NewSession(dec, finegrain.SessionOptions{Workers: workers, Trace: tr})
	if err != nil {
		return err
	}
	defer sess.Close()
	rows := dec.Assignment.A.Rows
	B := make([]float64, n*rows)
	for v := 0; v < n; v++ {
		for i := 0; i < rows; i++ {
			B[v*rows+i] = 1 / float64(i+v+1)
		}
	}
	res, err := sess.Solve(B, n, finegrain.SolveOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("  block CG: %d rhs, %d shared sweeps (CG assumes A is SPD)\n", n, res.BlockIterations)
	for v := 0; v < n; v++ {
		state := "converged"
		if !res.Converged[v] {
			state = "NOT converged"
		}
		fmt.Printf("    rhs %d: %4d iters, residual %.3e, %s\n", v, res.Iterations[v], res.Residuals[v], state)
	}
	fmt.Printf("    spmv traffic: %d words (%d per rhs), %d messages; allreduce %d words\n",
		res.SpMVWords, res.SpMVWords/n, res.SpMVMessages, res.AllreduceWords)
	if res.BlockIterations > 0 {
		perSweep := res.SpMVMessages / res.BlockIterations
		solo := 0
		for _, it := range res.Iterations {
			solo += it
		}
		fmt.Printf("    amortization: %d messages per sweep at any batch width; %d solo solves would send %d messages (%.2fx)\n",
			perSweep, n, solo*perSweep, float64(solo*perSweep)/float64(res.SpMVMessages))
	}
	return nil
}

// runMeasure times the real multithreaded kernel on the natural and
// reordered layouts and reports wall-clock GFLOP/s — the figure the
// whole locality pipeline exists to improve. Both layouts run in steady
// state (vectors stay in the plan's space, as an iterative solver keeps
// them across a whole solve), in interleaved rounds so noise on shared
// hosts hits both sides alike.
func runMeasure(a *finegrain.Matrix, perm *finegrain.Permutation, tr *finegrain.Trace) error {
	natural, err := kernel.NewPlanTraced(a, nil, kernel.Options{}, tr)
	if err != nil {
		return err
	}
	defer natural.Close()
	reordered, err := kernel.NewPlanTraced(a, perm, kernel.Options{}, tr)
	if err != nil {
		return err
	}
	defer reordered.Close()

	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = 1 / float64(i+1)
	}
	xp := make([]float64, a.Cols) // x in permuted space, permuted once
	reorder.ApplyVec(xp, x, perm.Col)
	y := make([]float64, a.Rows)
	flops := 2 * float64(a.NNZ())
	opts := kernel.ExecOptions{}

	// Warm up (spawns workers), then calibrate the round size to
	// roughly 50 ms on the natural layout. The warm-up calls carry the
	// trace track, so -trace records one kernel/exec span per layout
	// without span overhead inside the timed rounds.
	traced := kernel.ExecOptions{Track: tr.NewTrack("kernel measure")}
	if err := natural.Exec(x, y, traced); err != nil {
		return err
	}
	if err := reordered.Exec(xp, y, traced); err != nil {
		return err
	}
	start := time.Now()
	if err := natural.Exec(x, y, opts); err != nil {
		return err
	}
	per := time.Since(start)
	iters := int(50 * time.Millisecond / (per + 1))
	if iters < 1 {
		iters = 1
	}
	var nsNat, nsReord float64
	for round := 0; round < 3; round++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := natural.Exec(x, y, opts); err != nil {
				return err
			}
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(iters)
		if nsNat == 0 || ns < nsNat {
			nsNat = ns
		}
		start = time.Now()
		for i := 0; i < iters; i++ {
			if err := reordered.Exec(xp, y, opts); err != nil {
				return err
			}
		}
		ns = float64(time.Since(start).Nanoseconds()) / float64(iters)
		if nsReord == 0 || ns < nsReord {
			nsReord = ns
		}
	}
	fmt.Printf("  kernel (GOMAXPROCS=%d, %d blocks):\n", runtime.GOMAXPROCS(0), reordered.Blocks())
	fmt.Printf("    natural:   %12.0f ns/op  %6.3f GFLOP/s\n", nsNat, flops/nsNat)
	fmt.Printf("    reordered: %12.0f ns/op  %6.3f GFLOP/s  (speedup %.2fx)\n",
		nsReord, flops/nsReord, nsNat/nsReord)
	return nil
}
