// Command matgen writes the synthetic catalog matrices (Table 1
// stand-ins) as Matrix Market files.
//
// Usage:
//
//	matgen -name ken-11 -scale 0.1 -out ken-11.mtx
//	matgen -all -scale 0.05 -dir ./matrices
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"finegrain/internal/experiments"
	"finegrain/internal/matgen"
	"finegrain/internal/mmio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("matgen: ")
	name := flag.String("name", "", "catalog matrix to generate")
	all := flag.Bool("all", false, "generate the whole catalog")
	scale := flag.Float64("scale", 0.1, "scale (1 = paper size)")
	seed := flag.Uint64("seed", 0, "generation seed (0 = per-name default)")
	out := flag.String("out", "", "output file for -name (default <name>.mtx)")
	dir := flag.String("dir", ".", "output directory for -all")
	flag.Parse()

	write := func(spec matgen.Spec, path string) {
		s := *seed
		if s == 0 {
			s = experiments.MatrixSeed(spec.Name)
		}
		a := spec.Scaled(*scale).Generate(s)
		if err := mmio.WriteFile(path, a); err != nil {
			log.Fatal(err)
		}
		st := a.ComputeStats()
		fmt.Printf("%-30s n=%-7d nnz=%-8d degrees [%d..%d] avg %.2f\n",
			path, st.Rows, st.NNZ, st.PooledMin, st.PooledMax, st.PooledAvg)
	}

	switch {
	case *all:
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			log.Fatal(err)
		}
		for _, spec := range matgen.Catalog() {
			write(spec, filepath.Join(*dir, spec.Name+".mtx"))
		}
	case *name != "":
		spec, err := matgen.Lookup(*name)
		if err != nil {
			log.Fatal(err)
		}
		path := *out
		if path == "" {
			path = spec.Name + ".mtx"
		}
		write(spec, path)
	default:
		flag.Usage()
		fmt.Fprintln(os.Stderr, "\ncatalog:")
		for _, spec := range matgen.Catalog() {
			fmt.Fprintf(os.Stderr, "  %-12s n=%-6d nnz=%-7d %s\n", spec.Name, spec.N, spec.NNZ, spec.Family)
		}
		os.Exit(2)
	}
}
