// Generic reduction decomposition: the paper's Section 3 extension.
// The fine-grain model decomposes any parallel reduction whose atomic
// tasks read inputs and contribute to outputs — here, a sensor-fusion
// style workload where some inputs (sensors wired to specific nodes)
// and outputs (displays hosted on specific nodes) are pre-assigned to
// processors via fixed part vertices.
package main

import (
	"fmt"
	"log"

	finegrain "finegrain"
	"finegrain/internal/rng"
)

func main() {
	const (
		numSensors = 120 // reduction inputs
		numTracks  = 40  // reduction outputs
		numTasks   = 600
		k          = 4
	)
	r := rng.New(2024)

	// Each fusion task reads 2-4 sensors (mostly from one cluster) and
	// updates 1-2 tracks.
	tasks := make([]finegrain.Task, numTasks)
	for t := range tasks {
		cluster := r.Intn(6)
		nIn := 2 + r.Intn(3)
		task := finegrain.Task{Weight: 1 + r.Intn(3)}
		for i := 0; i < nIn; i++ {
			s := cluster*20 + r.Intn(20)
			if r.Intn(10) == 0 {
				s = r.Intn(numSensors) // occasional cross-cluster read
			}
			task.Inputs = append(task.Inputs, s)
		}
		for o := 0; o < 1+r.Intn(2); o++ {
			task.Outputs = append(task.Outputs, r.Intn(numTracks))
		}
		tasks[t] = task
	}

	// Pre-assignments: sensors 0-19 are wired to processor 0; the
	// first four tracks are displayed on processor 3.
	opts := finegrain.ReductionOptions{K: k}
	opts.PreInputs = make([]int, numSensors)
	for i := range opts.PreInputs {
		opts.PreInputs[i] = -1
		if i < 20 {
			opts.PreInputs[i] = 0
		}
	}
	opts.PreOutputs = make([]int, numTracks)
	for o := range opts.PreOutputs {
		opts.PreOutputs[o] = -1
		if o < 4 {
			opts.PreOutputs[o] = 3
		}
	}

	rm, err := finegrain.BuildReduction(numSensors, numTracks, tasks, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reduction hypergraph: %v (tasks %d, nets %d; %d fixed part vertices)\n",
		rm.H, rm.NumTasks, rm.H.NumNets(), rm.H.NumVertices()-rm.NumTasks)

	p, err := finegrain.PartitionHypergraph(rm.H, k, rm.Fixed, finegrain.Options{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	dec, err := rm.Decode(p, opts)
	if err != nil {
		log.Fatal(err)
	}

	vol := rm.Volume(tasks, dec)
	fmt.Printf("K=%d decomposition: cutsize %d, exact communication volume %d words\n",
		k, p.CutsizeConnectivity(rm.H), vol)
	loads := make([]int, k)
	for t, owner := range dec.TaskOwner {
		w := tasks[t].Weight
		if w <= 0 {
			w = 1
		}
		loads[owner] += w
	}
	fmt.Printf("task load per processor: %v (imbalance %.1f%%)\n", loads, p.Imbalance(rm.H))

	// Pre-assignments held.
	for i := 0; i < 20; i++ {
		if dec.InputOwner[i] != 0 {
			log.Fatalf("sensor %d moved off processor 0", i)
		}
	}
	for o := 0; o < 4; o++ {
		if dec.OutputOwner[o] != 3 {
			log.Fatalf("track %d moved off processor 3", o)
		}
	}
	fmt.Println("pre-assigned sensors stayed on P0 and displays on P3 ✓")

	// Compare with a task-index round-robin baseline.
	rr := &finegrain.ReductionDecomposition{K: k,
		TaskOwner:   make([]int, numTasks),
		InputOwner:  dec.InputOwner,
		OutputOwner: dec.OutputOwner,
	}
	for t := range rr.TaskOwner {
		rr.TaskOwner[t] = t % k
	}
	fmt.Printf("round-robin baseline volume: %d words (%.1fx worse)\n",
		rm.Volume(tasks, rr), float64(rm.Volume(tasks, rr))/float64(vol))
}
