// Model comparison sweep: regenerate the paper's core finding across
// matrix families and processor counts. For each selected catalog
// matrix and K, the three decomposition models are run and their scaled
// communication volumes printed side by side, with the fine-grain
// improvement percentage — the quantity behind the paper's "about 50
// percent decrease" headline.
//
// Usage: go run ./examples/comparison [-scale 0.08] [-k 16,32] [-seeds 2]
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"finegrain/internal/experiments"
	"finegrain/internal/matgen"
)

func main() {
	scale := flag.Float64("scale", 0.08, "matrix scale (1 = paper size)")
	ks := flag.String("k", "16", "comma-separated processor counts")
	seeds := flag.Int("seeds", 2, "partitioner seeds averaged per instance")
	matrices := flag.String("matrices", "sherman3,bcspwr10,ken-11,cq9,cre-b,finan512",
		"comma-separated catalog matrices")
	flag.Parse()

	var kList []int
	for _, f := range strings.Split(*ks, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			log.Fatalf("bad -k: %v", err)
		}
		kList = append(kList, k)
	}

	fmt.Printf("%-12s %4s | %10s %10s %10s %10s | %s\n",
		"matrix", "K", "checker-2d", "graph-1d", "hg-1d", "fg-2d", "fg improvement vs hg-1d")
	for _, name := range strings.Split(*matrices, ",") {
		spec, err := matgen.Lookup(strings.TrimSpace(name))
		if err != nil {
			log.Fatal(err)
		}
		a := spec.Scaled(*scale).Generate(experiments.MatrixSeed(spec.Name))
		for _, k := range kList {
			vols := map[experiments.Model]float64{}
			for _, model := range experiments.AllModels() {
				avg, err := experiments.RunAveraged(a, k, model, *seeds, 0)
				if err != nil {
					log.Fatalf("%s K=%d %s: %v", spec.Name, k, model, err)
				}
				vols[model] = avg.ScaledTot
			}
			imp := 100 * (1 - vols[experiments.FineGrain2D]/vols[experiments.Hypergraph1D])
			fmt.Printf("%-12s %4d | %10.3f %10.3f %10.3f %10.3f | %+.0f%%\n",
				spec.Name, k,
				vols[experiments.Checkerboard2D], vols[experiments.GraphModel],
				vols[experiments.Hypergraph1D], vols[experiments.FineGrain2D], imp)
		}
	}
	fmt.Println("\n(volumes are words scaled by the matrix dimension, as in Table 2)")
}
