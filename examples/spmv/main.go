// Iterative-solver workload: the paper's motivating scenario. A
// ken-11-profile LP matrix is decomposed once per model and then
// repeatedly multiplied (as an iterative solver would), showing how the
// decomposition's communication volume dominates the recurring cost.
//
// Usage: go run ./examples/spmv [-matrix ken-11] [-scale 0.08] [-k 16] [-iters 5]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	finegrain "finegrain"
)

func main() {
	matrix := flag.String("matrix", "ken-11", "catalog matrix name")
	scale := flag.Float64("scale", 0.08, "matrix scale (1 = paper size)")
	k := flag.Int("k", 16, "number of processors")
	iters := flag.Int("iters", 5, "multiplications per decomposition (solver iterations)")
	flag.Parse()

	a, err := finegrain.Generate(*matrix, *scale, 1)
	if err != nil {
		log.Fatal(err)
	}
	st := a.ComputeStats()
	fmt.Printf("%s at scale %.2g: n=%d, nnz=%d, degrees [%d..%d] avg %.2f\n\n",
		*matrix, *scale, st.Rows, st.NNZ, st.PooledMin, st.PooledMax, st.PooledAvg)

	type method struct {
		name string
		fn   func(*finegrain.Matrix, int, finegrain.Options) (*finegrain.Decomposition, error)
	}
	methods := []method{
		{"1D graph (MeTiS-style)", finegrain.Decompose1DGraph},
		{"1D hypergraph (PaToH-style)", finegrain.Decompose1D},
		{"2D fine-grain (proposed)", finegrain.Decompose2D},
	}

	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = 1.0 / float64(i+1)
	}

	for _, m := range methods {
		start := time.Now()
		dec, err := m.fn(a, *k, finegrain.Options{Seed: 7})
		if err != nil {
			log.Fatalf("%s: %v", m.name, err)
		}
		partTime := time.Since(start)

		// Run the solver loop: compile the decomposition into a reusable
		// plan once, then execute y = Ax repeatedly (each iteration pays
		// the expand/fold volume again, but not the compilation).
		mul, err := finegrain.NewMultiplier(dec)
		if err != nil {
			log.Fatalf("%s: %v", m.name, err)
		}
		var words, msgs int
		start = time.Now()
		for it := 0; it < *iters; it++ {
			res, err := mul.Multiply(x)
			if err != nil {
				log.Fatal(err)
			}
			words += res.TotalWords()
			msgs += res.TotalMessages()
		}
		mulTime := time.Since(start)
		mul.Close()

		s := dec.Stats
		fmt.Printf("%-30s partition %8v | per-iteration: %6d words (%.3f/row), %5.1f msgs/proc | imbalance %.1f%%\n",
			m.name, partTime.Round(time.Millisecond),
			s.TotalVolume, s.ScaledTotalVolume(a.Rows), s.AvgMessagesPerProc, s.ImbalancePct)
		fmt.Printf("%-30s %d iterations moved %d words in %d messages (%v)\n\n",
			"", *iters, words, msgs, mulTime.Round(time.Millisecond))
	}
}
