// Quickstart: build a small sparse matrix, decompose it for 4
// processors with the paper's fine-grain hypergraph model, inspect the
// communication profile, and verify the decomposition by executing
// y = Ax on simulated message-passing processors.
package main

import (
	"fmt"
	"log"

	finegrain "finegrain"
)

func main() {
	// An 8×8 matrix with an irregular pattern: tridiagonal band plus a
	// dense column 0 (the structure 1D rowwise decompositions handle
	// poorly and the fine-grain model splits freely).
	coo := finegrain.NewCOO(8, 8)
	for i := 0; i < 8; i++ {
		coo.Add(i, i, 2)
		if i > 0 {
			coo.Add(i, i-1, -1)
			coo.Add(i-1, i, -1)
			coo.Add(i, 0, 0.5) // dense column
		}
	}
	a := coo.ToCSR()
	fmt.Printf("matrix: %v\n", a)

	dec, err := finegrain.Decompose2D(a, 4, finegrain.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	st := dec.Stats
	fmt.Printf("fine-grain 2D decomposition on K=%d processors:\n", st.K)
	fmt.Printf("  total communication volume: %d words (expand %d + fold %d)\n",
		st.TotalVolume, st.ExpandVolume, st.FoldVolume)
	fmt.Printf("  connectivity-1 cutsize:     %d (equals the volume: the paper's theorem)\n", dec.Cutsize)
	fmt.Printf("  messages: %d total, %.2f per processor (bound 2(K-1) = %d)\n",
		st.TotalMessages, st.AvgMessagesPerProc, 2*(st.K-1))
	fmt.Printf("  multiplies per processor: %v (imbalance %.1f%%)\n", st.Loads, st.ImbalancePct)

	// Execute y = Ax on 4 simulated processors and check the result.
	x := make([]float64, 8)
	for i := range x {
		x[i] = float64(i + 1)
	}
	res, err := finegrain.Multiply(dec, x)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parallel y = %v\n", res.Y)
	fmt.Printf("simulator moved %d words in %d messages — matches the analysis: %v\n",
		res.TotalWords(), res.TotalMessages(), res.TotalWords() == st.TotalVolume)

	if err := finegrain.Verify(a, dec, x); err != nil {
		log.Fatal(err)
	}
	fmt.Println("verified against the serial kernel ✓")

	// An iterative solver multiplies thousands of times against one
	// decomposition; a Multiplier compiles the communication plan once
	// so each multiply pays only execution cost.
	mul, err := finegrain.NewMultiplier(dec)
	if err != nil {
		log.Fatal(err)
	}
	defer mul.Close()
	for it := 0; it < 3; it++ {
		if _, err := mul.Multiply(x); err != nil {
			log.Fatal(err)
		}
	}
	ctr := mul.Counters()
	fmt.Printf("3 more multiplies on the compiled plan, %d words each ✓\n",
		ctr.TotalWords())
}
