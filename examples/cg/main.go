// Conjugate gradient on a decomposed matrix — the full iterative-solver
// scenario from the paper's introduction. A symmetric positive definite
// system (5-point Laplacian + I) is solved with CG, where every
// iteration's matrix-vector product runs on K simulated processors
// through the chosen decomposition. CG compiles the decomposition into
// an execution plan once and reuses it for every iteration's multiply
// (see solver.CGOnPlan to amortize one plan across many solves). The
// better the decomposition, the fewer words the whole solve moves.
package main

import (
	"fmt"
	"log"

	finegrain "finegrain"
	"finegrain/internal/matgen"
	"finegrain/internal/solver"
)

func main() {
	// 48×48 grid Laplacian, shifted to be strictly SPD.
	a := matgen.Grid5Point(48, 48)
	coo := a.ToCOO()
	for i := 0; i < a.Rows; i++ {
		coo.Add(i, i, 1)
	}
	a = coo.ToCSR()
	n := a.Rows
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	const k = 8
	fmt.Printf("solving A·x = b: %v on K=%d processors\n\n", a, k)

	type method struct {
		name string
		fn   func(*finegrain.Matrix, int, finegrain.Options) (*finegrain.Decomposition, error)
	}
	for _, m := range []method{
		{"1D graph", finegrain.Decompose1DGraph},
		{"1D hypergraph", finegrain.Decompose1D},
		{"2D fine-grain", finegrain.Decompose2D},
	} {
		dec, err := m.fn(a, k, finegrain.Options{Seed: 11})
		if err != nil {
			log.Fatalf("%s: %v", m.name, err)
		}
		res, err := solver.CG(dec.Assignment, b, solver.CGOptions{Tol: 1e-8})
		if err != nil {
			log.Fatalf("%s: %v", m.name, err)
		}
		if !res.Converged {
			log.Fatalf("%s: CG did not converge (residual %g)", m.name, res.Residual)
		}
		fmt.Printf("%-15s %3d iterations, residual %.2e\n", m.name, res.Iterations, res.Residual)
		fmt.Printf("%-15s words/iteration: %d (volume of the decomposition)\n",
			"", dec.Stats.TotalVolume)
		fmt.Printf("%-15s whole solve: %d spmv words + %d allreduce words = %d total\n\n",
			"", res.SpMVWords, res.AllreduceWords, res.TotalWords())
	}
}
