package finegrain_test

import (
	"testing"

	finegrain "finegrain"
)

func smallMatrix() *finegrain.Matrix {
	// Arrowhead matrix: dense first row and column plus diagonal.
	coo := finegrain.NewCOO(32, 32)
	for i := 0; i < 32; i++ {
		coo.Add(i, i, 2)
		if i > 0 {
			coo.Add(0, i, 1)
			coo.Add(i, 0, 1)
		}
	}
	return coo.ToCSR()
}

func TestDecomposeAllModels(t *testing.T) {
	a := smallMatrix()
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	type entry struct {
		name string
		fn   func(*finegrain.Matrix, int, finegrain.Options) (*finegrain.Decomposition, error)
	}
	for _, e := range []entry{
		{"2D", finegrain.Decompose2D},
		{"1D", finegrain.Decompose1D},
		{"1D-graph", finegrain.Decompose1DGraph},
	} {
		dec, err := e.fn(a, 4, finegrain.Options{Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", e.name, err)
		}
		if dec.Stats.K != 4 {
			t.Fatalf("%s: K = %d", e.name, dec.Stats.K)
		}
		if !dec.Assignment.Symmetric() {
			t.Fatalf("%s: vector partition not symmetric", e.name)
		}
		if err := finegrain.Verify(a, dec, x); err != nil {
			t.Fatalf("%s: %v", e.name, err)
		}
	}
}

func TestCutsizeEqualsVolumeForHypergraphModels(t *testing.T) {
	a := smallMatrix()
	for _, fn := range []func(*finegrain.Matrix, int, finegrain.Options) (*finegrain.Decomposition, error){
		finegrain.Decompose2D, finegrain.Decompose1D, finegrain.DecomposeMediumGrain,
	} {
		dec, err := fn(a, 4, finegrain.Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if dec.Cutsize != dec.Stats.TotalVolume {
			t.Fatalf("cutsize %d != volume %d", dec.Cutsize, dec.Stats.TotalVolume)
		}
	}
}

func TestGenerateCatalog(t *testing.T) {
	names := finegrain.CatalogNames()
	if len(names) != 14 {
		t.Fatalf("%d names", len(names))
	}
	a, err := finegrain.Generate("sherman3", 0.02, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows == 0 || a.NNZ() == 0 {
		t.Fatal("empty matrix")
	}
	if _, err := finegrain.Generate("nope", 0.02, 1); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestGeneratedPipeline(t *testing.T) {
	a, err := finegrain.Generate("bcspwr10", 0.03, 7)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := finegrain.Decompose2D(a, 8, finegrain.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Stats.ImbalancePct > 3.5 {
		t.Fatalf("imbalance %.2f%%", dec.Stats.ImbalancePct)
	}
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = 1
	}
	if err := finegrain.Verify(a, dec, x); err != nil {
		t.Fatal(err)
	}
}

func TestMultiplyCountsWords(t *testing.T) {
	a := smallMatrix()
	dec, err := finegrain.Decompose2D(a, 4, finegrain.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, a.Cols)
	res, err := finegrain.Multiply(dec, x)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalWords() != dec.Stats.TotalVolume {
		t.Fatalf("simulator words %d, analyzer %d", res.TotalWords(), dec.Stats.TotalVolume)
	}
}

func TestPartitionHypergraphFixed(t *testing.T) {
	a := smallMatrix()
	fg, err := finegrain.BuildFineGrain(a)
	if err != nil {
		t.Fatal(err)
	}
	fixed := make([]int, fg.H.NumVertices())
	for i := range fixed {
		fixed[i] = -1
	}
	fixed[0] = 2
	p, err := finegrain.PartitionHypergraph(fg.H, 4, fixed, finegrain.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Parts[0] != 2 {
		t.Fatalf("fixed vertex moved to part %d", p.Parts[0])
	}
}

func TestReductionFacade(t *testing.T) {
	tasks := []finegrain.Task{
		{Inputs: []int{0, 1}, Outputs: []int{0}},
		{Inputs: []int{1, 2}, Outputs: []int{1}},
		{Inputs: []int{2, 3}, Outputs: []int{0, 1}},
	}
	rm, err := finegrain.BuildReduction(4, 2, tasks, finegrain.ReductionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := finegrain.PartitionHypergraph(rm.H, 2, rm.Fixed, finegrain.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := rm.Decode(p, finegrain.ReductionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if vol := rm.Volume(tasks, dec); vol != p.CutsizeConnectivity(rm.H) {
		t.Fatalf("reduction volume %d != cutsize %d", vol, p.CutsizeConnectivity(rm.H))
	}
}

func TestMeasureFacade(t *testing.T) {
	a := smallMatrix()
	dec, err := finegrain.Decompose1D(a, 2, finegrain.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := finegrain.Measure(dec.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalVolume != dec.Stats.TotalVolume {
		t.Fatal("re-measure disagrees")
	}
}

func TestFromEntries(t *testing.T) {
	a := finegrain.FromEntries(2, 2, []finegrain.Entry{{Row: 0, Col: 1, Val: 3}})
	if a.At(0, 1) != 3 {
		t.Fatal("FromEntries wrong")
	}
}

// TestMediumGrainDecompose covers the medium-grain facade: numeric
// verification, cutsize exactness (the house invariant), the recorded
// Model name, and bitwise determinism across worker counts.
func TestMediumGrainDecompose(t *testing.T) {
	a := smallMatrix()
	dec, err := finegrain.DecomposeMediumGrain(a, 4, finegrain.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Model != "medium_grain" {
		t.Fatalf("Model = %q, want medium_grain", dec.Model)
	}
	if dec.Cutsize != dec.Stats.TotalVolume {
		t.Fatalf("cutsize %d != volume %d", dec.Cutsize, dec.Stats.TotalVolume)
	}
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = float64(i%5) - 2
	}
	if err := finegrain.Verify(a, dec, x); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		d2, err := finegrain.DecomposeMediumGrain(a, 4, finegrain.Options{Seed: 3, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for i := range dec.Assignment.NonzeroOwner {
			if d2.Assignment.NonzeroOwner[i] != dec.Assignment.NonzeroOwner[i] {
				t.Fatalf("Workers=%d: nonzero %d owner differs", workers, i)
			}
		}
		for i := range dec.Assignment.YOwner {
			if d2.Assignment.YOwner[i] != dec.Assignment.YOwner[i] ||
				d2.Assignment.XOwner[i] != dec.Assignment.XOwner[i] {
				t.Fatalf("Workers=%d: vector owner %d differs", workers, i)
			}
		}
	}
}

// TestAutoSelection pins the auto model's contract: the choice is a
// deterministic pure function of the matrix, recorded in
// Decomposition.Model as a concrete model name, and the auto
// decomposition is identical to an explicit decomposition of the
// chosen model.
func TestAutoSelection(t *testing.T) {
	a := smallMatrix()
	d := finegrain.SelectModel(a)
	if _, ok := finegrain.LookupModel(d.Model); !ok || d.Model == "auto" {
		t.Fatalf("SelectModel chose %q", d.Model)
	}
	if d.Reason == "" {
		t.Fatal("decision carries no reason")
	}
	for trial := 0; trial < 3; trial++ {
		if got := finegrain.SelectModel(a); got.Model != d.Model || got.Features != d.Features {
			t.Fatalf("selection not deterministic: %+v vs %+v", got, d)
		}
	}

	auto, err := finegrain.DecomposeModel("auto", a, 4, finegrain.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if auto.Model != d.Model {
		t.Fatalf("auto recorded model %q, SelectModel chose %q", auto.Model, d.Model)
	}
	explicit, err := finegrain.DecomposeModel(d.Model, a, 4, finegrain.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if auto.Cutsize != explicit.Cutsize || auto.Stats.TotalVolume != explicit.Stats.TotalVolume {
		t.Fatalf("auto (%d words) differs from explicit %s (%d words)",
			auto.Stats.TotalVolume, d.Model, explicit.Stats.TotalVolume)
	}
	for i := range auto.Assignment.NonzeroOwner {
		if auto.Assignment.NonzeroOwner[i] != explicit.Assignment.NonzeroOwner[i] {
			t.Fatalf("auto and explicit %s disagree at nonzero %d", d.Model, i)
		}
	}
	for _, workers := range []int{1, 2, 8} {
		d2, err := finegrain.DecomposeModel("auto", a, 4, finegrain.Options{Seed: 3, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if d2.Model != auto.Model || d2.Cutsize != auto.Cutsize {
			t.Fatalf("Workers=%d: auto chose %q/cut %d, want %q/%d",
				workers, d2.Model, d2.Cutsize, auto.Model, auto.Cutsize)
		}
	}
}

// TestAutoSelectionBranches drives each branch of the selection policy
// with a matrix built to trigger it.
func TestAutoSelectionBranches(t *testing.T) {
	// Symmetric tridiagonal: symmetric, perfectly regular interior.
	tri := finegrain.NewCOO(64, 64)
	for i := 0; i < 64; i++ {
		tri.Add(i, i, 2)
		if i > 0 {
			tri.Add(i, i-1, -1)
			tri.Add(i-1, i, -1)
		}
	}
	if d := finegrain.SelectModel(tri.ToCSR()); d.Model != "hypergraph" {
		t.Fatalf("tridiagonal chose %q: %s", d.Model, d.Reason)
	}
	// Arrowhead: symmetric but one row holds half the nonzeros.
	if d := finegrain.SelectModel(smallMatrix()); d.Model != "finegrain" {
		t.Fatalf("arrowhead chose %q: %s", d.Model, d.Reason)
	}
	// Lower bidiagonal: regular but fully unsymmetric off-diagonal.
	bi := finegrain.NewCOO(64, 64)
	for i := 0; i < 64; i++ {
		bi.Add(i, i, 2)
		if i > 0 {
			bi.Add(i, i-1, 1)
		}
	}
	if d := finegrain.SelectModel(bi.ToCSR()); d.Model != "medium_grain" {
		t.Fatalf("bidiagonal chose %q: %s", d.Model, d.Reason)
	}
}

// TestSpGEMMFacade runs the spgemm registry models end to end: the
// cutsize must equal the measured volume, and the simulated executor
// must realize exactly the measured traffic while matching the serial
// product.
func TestSpGEMMFacade(t *testing.T) {
	a := smallMatrix()
	for _, model := range []string{"spgemm", "spgemm_1d"} {
		dec, err := finegrain.DecomposeModel(model, a, 4, finegrain.Options{Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		if dec.Model != model {
			t.Fatalf("Model = %q, want %q", dec.Model, model)
		}
		if dec.Assignment != nil || dec.SpGEMM == nil {
			t.Fatalf("%s: want nil Assignment and non-nil SpGEMM", model)
		}
		if dec.Cutsize != dec.Stats.TotalVolume {
			t.Fatalf("%s: cutsize %d != volume %d", model, dec.Cutsize, dec.Stats.TotalVolume)
		}
		res, err := finegrain.ExecuteSpGEMM(dec)
		if err != nil {
			t.Fatal(err)
		}
		if res.TotalWords() != dec.Stats.TotalVolume {
			t.Fatalf("%s: executor moved %d words, measured %d", model, res.TotalWords(), dec.Stats.TotalVolume)
		}
		if res.ExpandMessages != dec.Stats.ExpandMessages || res.FoldMessages != dec.Stats.FoldMessages {
			t.Fatalf("%s: executor messages %d/%d, measured %d/%d", model,
				res.ExpandMessages, res.FoldMessages, dec.Stats.ExpandMessages, dec.Stats.FoldMessages)
		}
		want, err := finegrain.MatMul(a, a)
		if err != nil {
			t.Fatal(err)
		}
		for p := range want.Val {
			diff := res.C.Val[p] - want.Val[p]
			if diff < -1e-9 || diff > 1e-9 {
				t.Fatalf("%s: executed value %g at %d, serial %g", model, res.C.Val[p], p, want.Val[p])
			}
		}
	}
	// A non-spgemm decomposition has no SpGEMM assignment to execute.
	dec, err := finegrain.Decompose1D(a, 2, finegrain.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := finegrain.ExecuteSpGEMM(dec); finegrain.ErrorCodeOf(err) != finegrain.BadModel {
		t.Fatalf("ExecuteSpGEMM on SpMV decomposition: %v", err)
	}
}
