package finegrain_test

import (
	"testing"

	finegrain "finegrain"
)

func smallMatrix() *finegrain.Matrix {
	// Arrowhead matrix: dense first row and column plus diagonal.
	coo := finegrain.NewCOO(32, 32)
	for i := 0; i < 32; i++ {
		coo.Add(i, i, 2)
		if i > 0 {
			coo.Add(0, i, 1)
			coo.Add(i, 0, 1)
		}
	}
	return coo.ToCSR()
}

func TestDecomposeAllModels(t *testing.T) {
	a := smallMatrix()
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	type entry struct {
		name string
		fn   func(*finegrain.Matrix, int, finegrain.Options) (*finegrain.Decomposition, error)
	}
	for _, e := range []entry{
		{"2D", finegrain.Decompose2D},
		{"1D", finegrain.Decompose1D},
		{"1D-graph", finegrain.Decompose1DGraph},
	} {
		dec, err := e.fn(a, 4, finegrain.Options{Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", e.name, err)
		}
		if dec.Stats.K != 4 {
			t.Fatalf("%s: K = %d", e.name, dec.Stats.K)
		}
		if !dec.Assignment.Symmetric() {
			t.Fatalf("%s: vector partition not symmetric", e.name)
		}
		if err := finegrain.Verify(a, dec, x); err != nil {
			t.Fatalf("%s: %v", e.name, err)
		}
	}
}

func TestCutsizeEqualsVolumeForHypergraphModels(t *testing.T) {
	a := smallMatrix()
	for _, fn := range []func(*finegrain.Matrix, int, finegrain.Options) (*finegrain.Decomposition, error){
		finegrain.Decompose2D, finegrain.Decompose1D,
	} {
		dec, err := fn(a, 4, finegrain.Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if dec.Cutsize != dec.Stats.TotalVolume {
			t.Fatalf("cutsize %d != volume %d", dec.Cutsize, dec.Stats.TotalVolume)
		}
	}
}

func TestGenerateCatalog(t *testing.T) {
	names := finegrain.CatalogNames()
	if len(names) != 14 {
		t.Fatalf("%d names", len(names))
	}
	a, err := finegrain.Generate("sherman3", 0.02, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows == 0 || a.NNZ() == 0 {
		t.Fatal("empty matrix")
	}
	if _, err := finegrain.Generate("nope", 0.02, 1); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestGeneratedPipeline(t *testing.T) {
	a, err := finegrain.Generate("bcspwr10", 0.03, 7)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := finegrain.Decompose2D(a, 8, finegrain.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Stats.ImbalancePct > 3.5 {
		t.Fatalf("imbalance %.2f%%", dec.Stats.ImbalancePct)
	}
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = 1
	}
	if err := finegrain.Verify(a, dec, x); err != nil {
		t.Fatal(err)
	}
}

func TestMultiplyCountsWords(t *testing.T) {
	a := smallMatrix()
	dec, err := finegrain.Decompose2D(a, 4, finegrain.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, a.Cols)
	res, err := finegrain.Multiply(dec, x)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalWords() != dec.Stats.TotalVolume {
		t.Fatalf("simulator words %d, analyzer %d", res.TotalWords(), dec.Stats.TotalVolume)
	}
}

func TestPartitionHypergraphFixed(t *testing.T) {
	a := smallMatrix()
	fg, err := finegrain.BuildFineGrain(a)
	if err != nil {
		t.Fatal(err)
	}
	fixed := make([]int, fg.H.NumVertices())
	for i := range fixed {
		fixed[i] = -1
	}
	fixed[0] = 2
	p, err := finegrain.PartitionHypergraph(fg.H, 4, fixed, finegrain.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Parts[0] != 2 {
		t.Fatalf("fixed vertex moved to part %d", p.Parts[0])
	}
}

func TestReductionFacade(t *testing.T) {
	tasks := []finegrain.Task{
		{Inputs: []int{0, 1}, Outputs: []int{0}},
		{Inputs: []int{1, 2}, Outputs: []int{1}},
		{Inputs: []int{2, 3}, Outputs: []int{0, 1}},
	}
	rm, err := finegrain.BuildReduction(4, 2, tasks, finegrain.ReductionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := finegrain.PartitionHypergraph(rm.H, 2, rm.Fixed, finegrain.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := rm.Decode(p, finegrain.ReductionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if vol := rm.Volume(tasks, dec); vol != p.CutsizeConnectivity(rm.H) {
		t.Fatalf("reduction volume %d != cutsize %d", vol, p.CutsizeConnectivity(rm.H))
	}
}

func TestMeasureFacade(t *testing.T) {
	a := smallMatrix()
	dec, err := finegrain.Decompose1D(a, 2, finegrain.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := finegrain.Measure(dec.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalVolume != dec.Stats.TotalVolume {
		t.Fatal("re-measure disagrees")
	}
}

func TestFromEntries(t *testing.T) {
	a := finegrain.FromEntries(2, 2, []finegrain.Entry{{Row: 0, Col: 1, Val: 3}})
	if a.At(0, 1) != 3 {
		t.Fatal("FromEntries wrong")
	}
}
