package finegrain_test

import (
	"reflect"
	"strings"
	"testing"

	finegrain "finegrain"
	"finegrain/internal/matgen"
	"finegrain/internal/solver"
)

// spdMatrix returns a strictly SPD matrix (5-point Laplacian plus
// identity) for the solve tests.
func spdMatrix(rows, cols int) *finegrain.Matrix {
	a := matgen.Grid5Point(rows, cols)
	coo := a.ToCOO()
	for i := 0; i < a.Rows; i++ {
		coo.Add(i, i, 1)
	}
	return coo.ToCSR()
}

func stackedB(rows, n int) []float64 {
	B := make([]float64, n*rows)
	for v := 0; v < n; v++ {
		for i := 0; i < rows; i++ {
			B[v*rows+i] = 1/float64(i+v+1) - 0.5
		}
	}
	return B
}

// TestSessionMultiplyAndBlock: the session's multiplies reproduce the
// deprecated per-call path bitwise, and MultiplyBlock equals n
// Multiply calls at every worker count.
func TestSessionMultiplyAndBlock(t *testing.T) {
	a, err := finegrain.Generate("nl", 0.05, 42)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := finegrain.Decompose2D(a, 8, finegrain.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	s, err := finegrain.NewSession(dec, finegrain.SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.K() != dec.Assignment.K {
		t.Fatalf("K() = %d, want %d", s.K(), dec.Assignment.K)
	}

	const n = 3
	X := make([]float64, n*a.Cols)
	for i := range X {
		X[i] = 1/float64(i+1) - 0.3
	}
	// Reference: the one-shot deprecated path.
	want := make([]float64, n*a.Rows)
	for v := 0; v < n; v++ {
		res, err := finegrain.Multiply(dec, X[v*a.Cols:(v+1)*a.Cols])
		if err != nil {
			t.Fatal(err)
		}
		copy(want[v*a.Rows:(v+1)*a.Rows], res.Y)
	}
	y := make([]float64, a.Rows)
	for v := 0; v < n; v++ {
		if err := s.Multiply(X[v*a.Cols:(v+1)*a.Cols], y, finegrain.ExecOptions{}); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(y, want[v*a.Rows:(v+1)*a.Rows]) {
			t.Fatalf("vector %d: Session.Multiply differs from Multiply", v)
		}
	}
	Y := make([]float64, n*a.Rows)
	for _, workers := range []int{1, 2, 8} {
		if err := s.MultiplyBlock(X, Y, n, finegrain.ExecOptions{Workers: workers}); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(Y, want) {
			t.Fatalf("workers=%d: MultiplyBlock differs from %d Multiply calls", workers, n)
		}
	}
	// The amortization surface: block messages equal single-multiply
	// messages, block words are n× the per-RHS counters.
	single, block := s.Counters(), s.BlockCounters(n)
	if block.TotalMessages() != single.TotalMessages() || block.TotalWords() != n*single.TotalWords() {
		t.Fatalf("BlockCounters(%d) = %d msgs / %d words, single = %d / %d",
			n, block.TotalMessages(), block.TotalWords(), single.TotalMessages(), single.TotalWords())
	}
}

// TestSessionSolveMatchesBlockCG: Session.Solve is exactly
// solver.BlockCGOnPlan on the session's plan — byte-identical X at any
// worker count — and per-RHS trajectories converge.
func TestSessionSolveMatchesBlockCG(t *testing.T) {
	a := spdMatrix(10, 14)
	dec, err := finegrain.Decompose2D(a, 4, finegrain.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := finegrain.NewSession(dec, finegrain.SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const n = 3
	B := stackedB(a.Rows, n)
	want, err := solver.BlockCG(dec.Assignment, B, n, solver.BlockCGOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		got, err := s.Solve(B, n, finegrain.SolveOptions{Tol: 1e-10, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !got.AllConverged() {
			t.Fatalf("workers=%d: not converged: %+v", workers, got.Converged)
		}
		if !reflect.DeepEqual(got.X, want.X) {
			t.Fatalf("workers=%d: Session.Solve differs bitwise from BlockCG", workers)
		}
		if !reflect.DeepEqual(got.Iterations, want.Iterations) {
			t.Fatalf("workers=%d: iteration counts differ: %v vs %v", workers, got.Iterations, want.Iterations)
		}
	}
}

// TestSessionLocalKernel: a session opened with CompileLocal serves
// real-kernel multiplies bitwise equal to the simulator's (rowwise
// model), including the block path.
func TestSessionLocalKernel(t *testing.T) {
	a, err := finegrain.Generate("nl", 0.05, 42)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := finegrain.Decompose1D(a, 8, finegrain.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	s, err := finegrain.NewSession(dec, finegrain.SessionOptions{CompileLocal: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const n = 2
	X := make([]float64, n*a.Cols)
	for i := range X {
		X[i] = float64(i%11) - 5
	}
	ySim := make([]float64, n*a.Rows)
	if err := s.MultiplyBlock(X, ySim, n, finegrain.ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	yKer := make([]float64, n*a.Rows)
	if err := s.MultiplyLocalBlock(X, yKer, n, finegrain.ExecOptions{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(yKer, ySim) {
		t.Fatal("local kernel block output differs bitwise from simulator")
	}
	y1 := make([]float64, a.Rows)
	if err := s.MultiplyLocal(X[:a.Cols], y1, finegrain.ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(y1, ySim[:a.Rows]) {
		t.Fatal("local kernel single output differs bitwise from simulator")
	}
}

// TestSessionErrors: nil decomposition, local calls without
// CompileLocal, and use after Close all fail cleanly; Close is
// idempotent.
func TestSessionErrors(t *testing.T) {
	if _, err := finegrain.NewSession(nil, finegrain.SessionOptions{}); finegrain.ErrorCodeOf(err) != finegrain.BadMatrix {
		t.Fatalf("nil decomposition: err = %v", err)
	}
	a := spdMatrix(6, 6)
	dec, err := finegrain.Decompose2D(a, 2, finegrain.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := finegrain.NewSession(dec, finegrain.SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, a.Cols)
	y := make([]float64, a.Rows)
	if err := s.MultiplyLocal(x, y, finegrain.ExecOptions{}); err == nil ||
		!strings.Contains(err.Error(), "CompileLocal") {
		t.Fatalf("MultiplyLocal without CompileLocal: err = %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("Close is not idempotent")
	}
	if err := s.Multiply(x, y, finegrain.ExecOptions{}); err == nil ||
		!strings.Contains(err.Error(), "closed") {
		t.Fatalf("Multiply after Close: err = %v", err)
	}
	if _, err := s.Solve(y, 1, finegrain.SolveOptions{}); err == nil ||
		!strings.Contains(err.Error(), "closed") {
		t.Fatalf("Solve after Close: err = %v", err)
	}
}

// TestDeprecatedWrappersStillWork pins the back-compat contract: the
// positional MultiplyInto signatures and per-call Multiply keep their
// exact semantics next to the struct-options replacements.
func TestDeprecatedWrappersStillWork(t *testing.T) {
	a, err := finegrain.Generate("nl", 0.05, 42)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := finegrain.Decompose2D(a, 8, finegrain.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	m, err := finegrain.NewMultiplier(dec)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = 1 / float64(i+1)
	}
	yOld := make([]float64, a.Rows)
	yNew := make([]float64, a.Rows)
	if err := m.MultiplyInto(x, yOld, 2); err != nil {
		t.Fatal(err)
	}
	if err := m.Exec(x, yNew, finegrain.ExecOptions{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(yOld, yNew) {
		t.Fatal("Multiplier.MultiplyInto and Exec disagree")
	}
	blk, single := m.BlockCounters(4), m.Counters()
	if blk.TotalWords() != 4*single.TotalWords() {
		t.Fatal("Multiplier.BlockCounters words do not scale by n")
	}
}
