package finegrain_test

import (
	"os"
	"regexp"
	"testing"

	finegrain "finegrain"
)

// TestDocsModelNames is the doc-drift guard for the model registry:
// the documents that enumerate decomposition models must name every
// registered model. Adding a model to the registry without updating
// the docs (or documenting a model that no longer exists in
// EXPERIMENTS.md's backticked list) fails this test.
func TestDocsModelNames(t *testing.T) {
	// Canonical names only: aliases ("2d", "1d") are also in
	// ModelNames, but docs need not spell every alias.
	var names []string
	for _, m := range finegrain.Models() {
		names = append(names, m.Name)
	}
	if len(names) == 0 {
		t.Fatal("empty model registry")
	}
	for _, doc := range []string{"README.md", "EXPERIMENTS.md", "OBSERVABILITY.md", "MODELS.md"} {
		b, err := os.ReadFile(doc)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range names {
			if !regexp.MustCompile(`\b` + regexp.QuoteMeta(name) + `\b`).Match(b) {
				t.Errorf("%s does not mention registered model %q", doc, name)
			}
		}
	}

	// EXPERIMENTS.md's preamble lists the models as backticked names;
	// that list must not drift ahead of the registry either.
	b, err := os.ReadFile("EXPERIMENTS.md")
	if err != nil {
		t.Fatal(err)
	}
	registered := map[string]bool{}
	for _, m := range finegrain.Models() {
		registered[m.Name] = true
		for _, a := range m.Aliases {
			registered[a] = true
		}
	}
	for _, m := range regexp.MustCompile("`([a-z0-9_]+)` \\(alias").FindAllSubmatch(b, -1) {
		if !registered[string(m[1])] {
			t.Errorf("EXPERIMENTS.md lists model %q, which is not in the registry", m[1])
		}
	}
}

// TestDocsModelSurface pins the documented surface of the model
// family added with the medium-grain/SpGEMM/auto work: the
// model-selection guide must cover every registry name AND alias, and
// the new flags, experiment modes, spans, log records and benchmark
// artifacts must stay documented where users are told to look.
func TestDocsModelSurface(t *testing.T) {
	// MODELS.md is the selection guide: unlike the other docs it must
	// name every alias too, since choosing between spellings is its job.
	b, err := os.ReadFile("MODELS.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range finegrain.Models() {
		for _, name := range append([]string{m.Name}, m.Aliases...) {
			if !regexp.MustCompile("`" + regexp.QuoteMeta(name) + "`").Match(b) {
				t.Errorf("MODELS.md does not mention model name/alias %q", name)
			}
		}
	}

	cases := []struct {
		doc   string
		wants []string
	}{
		{"README.md", []string{
			"-spgemm", "-spgemmbench", "-compare",
			"MODELS.md", "requested_model",
			"BENCH_spgemm.json", "bench-spgemm",
			"DecomposeSpGEMM",
		}},
		{"MODELS.md", []string{
			"SelectModel", "auto.select", "requested_model",
			"DecomposeSpGEMM", "BENCH_spgemm.json", "-spgemm",
		}},
		{"EXPERIMENTS.md", []string{
			"-compare", "-spgemmbench",
			"BENCH_spgemm.json", "bench-spgemm", "MODELS.md",
		}},
		{"OBSERVABILITY.md", []string{
			"auto.select", "requested_model", "auto model selected",
		}},
		{"DESIGN.md", []string{
			"internal/mediumgrain", "internal/spgemm",
			"DecomposeAuto", "SelectModel", "Sparse-SUMMA",
			"-spgemmbench",
		}},
		{"Makefile", []string{
			"bench-spgemm", "bench-spgemm-smoke",
		}},
	}
	for _, c := range cases {
		b, err := os.ReadFile(c.doc)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range c.wants {
			if !regexp.MustCompile(regexp.QuoteMeta(w)).Match(b) {
				t.Errorf("%s does not mention %q (model surface drift)", c.doc, w)
			}
		}
	}
}

// TestDocsBlockSurface pins the documented surface of the block
// multi-RHS + session subsystem: the CLI flags, the session endpoints,
// the benchmark artifact and target must stay documented where users
// are told to look for them.
func TestDocsBlockSurface(t *testing.T) {
	cases := []struct {
		doc   string
		wants []string
	}{
		{"README.md", []string{
			"-solve", "-session-ttl", "-session-max",
			"NewSession", "MultiplyBlock", "BlockCounters",
			"/v1/jobs/{id}/sessions", "application/x-ndjson",
			"BENCH_block.json", "bench-block",
		}},
		{"EXPERIMENTS.md", []string{
			"BENCH_block.json", "bench-block",
		}},
		{"OBSERVABILITY.md", []string{
			"exec.block", "cg.block", "session.open",
		}},
		{"DESIGN.md", []string{
			"ExecBlock", "BlockCGOnPlan", "Session",
			"BENCH_block.json", "FINEGRAIN_BLOCK_FLOOR",
		}},
		{"Makefile", []string{
			"bench-block", "bench-block-smoke",
			"FINEGRAIN_BLOCK_FLOOR", "FINEGRAIN_BLOCK_SMOKE",
		}},
	}
	for _, c := range cases {
		b, err := os.ReadFile(c.doc)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range c.wants {
			if !regexp.MustCompile(regexp.QuoteMeta(w)).Match(b) {
				t.Errorf("%s does not mention %q (block surface drift)", c.doc, w)
			}
		}
	}
}

// TestDocsLocalitySurface pins the documented surface of the locality
// subsystem: the CLI flags, the benchmark artifact and target, and the
// kernel/reorder trace spans must all stay documented where users are
// told to look for them. Renaming a flag, span or artifact without
// updating the docs fails here.
func TestDocsLocalitySurface(t *testing.T) {
	cases := []struct {
		doc   string
		wants []string
	}{
		{"README.md", []string{
			"-reorder", "-measure", "-localitybench",
			"BENCH_locality.json", "bench-locality",
			"NewLocalMultiplier", "Reorder",
		}},
		{"EXPERIMENTS.md", []string{
			"BENCH_locality.json", "bench-locality",
		}},
		{"OBSERVABILITY.md", []string{
			"reorder", "decode", "kernel", "compile", "exec", "cg",
		}},
		{"DESIGN.md", []string{
			"internal/reorder", "internal/kernel",
			"BENCH_locality.json", "FINEGRAIN_LOCALITY_FLOOR",
		}},
		{"Makefile", []string{
			"bench-locality", "bench-locality-smoke",
			"FINEGRAIN_LOCALITY_FLOOR", "FINEGRAIN_LOCALITY_SMOKE",
		}},
	}
	for _, c := range cases {
		b, err := os.ReadFile(c.doc)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range c.wants {
			if !regexp.MustCompile(regexp.QuoteMeta(w)).Match(b) {
				t.Errorf("%s does not mention %q (locality surface drift)", c.doc, w)
			}
		}
	}
}
