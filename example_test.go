package finegrain_test

import (
	"fmt"

	finegrain "finegrain"
)

// Example decomposes a tiny matrix with the fine-grain model and prints
// its exact communication volume.
func Example() {
	// 4×4 tridiagonal matrix.
	coo := finegrain.NewCOO(4, 4)
	for i := 0; i < 4; i++ {
		coo.Add(i, i, 2)
		if i > 0 {
			coo.Add(i, i-1, -1)
			coo.Add(i-1, i, -1)
		}
	}
	a := coo.ToCSR()
	dec, err := finegrain.Decompose2D(a, 2, finegrain.Options{Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println("volume == cutsize:", dec.Stats.TotalVolume == dec.Cutsize)
	// Output: volume == cutsize: true
}

// ExampleMultiply executes a decomposed y = Ax on simulated processors
// and shows that the words moved equal the analyzed volume.
func ExampleMultiply() {
	a := finegrain.FromEntries(3, 3, []finegrain.Entry{
		{Row: 0, Col: 0, Val: 1}, {Row: 1, Col: 1, Val: 2},
		{Row: 2, Col: 2, Val: 3}, {Row: 0, Col: 2, Val: 1},
	})
	dec, err := finegrain.Decompose2D(a, 2, finegrain.Options{Seed: 1})
	if err != nil {
		panic(err)
	}
	res, err := finegrain.Multiply(dec, []float64{1, 1, 1})
	if err != nil {
		panic(err)
	}
	fmt.Println("y:", res.Y)
	fmt.Println("words match analysis:", res.TotalWords() == dec.Stats.TotalVolume)
	// Output:
	// y: [2 2 3]
	// words match analysis: true
}

// ExampleNewMultiplier compiles a decomposition once and multiplies
// repeatedly — the iterative-solver regime the paper optimizes for.
func ExampleNewMultiplier() {
	a := finegrain.FromEntries(3, 3, []finegrain.Entry{
		{Row: 0, Col: 0, Val: 1}, {Row: 1, Col: 1, Val: 2},
		{Row: 2, Col: 2, Val: 3}, {Row: 0, Col: 2, Val: 1},
	})
	dec, err := finegrain.Decompose2D(a, 2, finegrain.Options{Seed: 1})
	if err != nil {
		panic(err)
	}
	m, err := finegrain.NewMultiplier(dec)
	if err != nil {
		panic(err)
	}
	defer m.Close()

	y := make([]float64, 3)
	x := []float64{1, 1, 1}
	for i := 0; i < 3; i++ { // e.g. power iteration: x ← Ax
		if err := m.MultiplyInto(x, y, 0); err != nil {
			panic(err)
		}
		copy(x, y)
	}
	fmt.Println("A³·1:", y)
	c := m.Counters()
	fmt.Println("words per multiply match analysis:", c.TotalWords() == dec.Stats.TotalVolume)
	// Output:
	// A³·1: [14 8 27]
	// words per multiply match analysis: true
}

// ExampleGenerate synthesizes one of the paper's test matrices.
func ExampleGenerate() {
	a, err := finegrain.Generate("sherman3", 0.02, 1)
	if err != nil {
		panic(err)
	}
	fmt.Println("square:", a.Rows == a.Cols, "nonzeros > 0:", a.NNZ() > 0)
	// Output: square: true nonzeros > 0: true
}

// ExampleBuildReduction decomposes a generic reduction problem with a
// pre-assigned input.
func ExampleBuildReduction() {
	tasks := []finegrain.Task{
		{Inputs: []int{0}, Outputs: []int{0}},
		{Inputs: []int{0, 1}, Outputs: []int{0}},
		{Inputs: []int{1}, Outputs: []int{1}},
		{Inputs: []int{2}, Outputs: []int{1}},
	}
	opts := finegrain.ReductionOptions{K: 2, PreInputs: []int{0, -1, -1}}
	rm, err := finegrain.BuildReduction(3, 2, tasks, opts)
	if err != nil {
		panic(err)
	}
	p, err := finegrain.PartitionHypergraph(rm.H, 2, rm.Fixed, finegrain.Options{Seed: 1})
	if err != nil {
		panic(err)
	}
	dec, err := rm.Decode(p, opts)
	if err != nil {
		panic(err)
	}
	fmt.Println("input 0 stays on processor:", dec.InputOwner[0])
	// Output: input 0 stays on processor: 0
}
