module finegrain

go 1.22
