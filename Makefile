GO ?= go

.PHONY: ci fmt vet test race e2e-fleet bench bench-quick bench-scaling bench-spmv build doc-check

ci: doc-check build race e2e-fleet

build:
	$(GO) build ./...
	$(GO) build -o /dev/null ./cmd/partserverd

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# doc-check keeps the documentation honest: gofmt + vet, the
# metrics ↔ OBSERVABILITY.md drift guard, and the model-registry ↔
# README/EXPERIMENTS.md drift guard.
doc-check: fmt vet
	$(GO) test -run 'TestMetricsDocumented' ./internal/partserver/
	$(GO) test -run 'TestDocsModelNames' .

test:
	$(GO) test ./...

# race covers the concurrent subsystems, including the partition
# server's end-to-end test (in-process daemon, concurrent duplicate
# submissions, graceful drain).
race:
	$(GO) test -race ./internal/hgpart/ ./internal/spmv/ ./internal/partserver/
	$(GO) test ./...

# e2e-fleet boots two-replica fleets under the race detector: a shared
# store directory (replica B serves A's computation, a restarted A
# still has it — zero recomputation, verified by the partitions
# counter), consistent-hash routing to the owner, and local fallback
# when the owner is down.
e2e-fleet:
	$(GO) test -race -count=1 -run 'TestFleet' ./internal/partserver/

# bench regenerates BENCH_partition.json: the Workers sweep of the
# multilevel partitioner (time, allocs/op, bytes/op) on the nl matrix
# at K=64 and ken-11 at K=16, both at paper size.
bench:
	$(GO) test -run '^$$' -bench BenchmarkPartitionWorkers -benchtime 1x .

# bench-quick is the seconds-long variant for iterating on the hot
# path: one small matrix, no JSON artifact.
bench-quick:
	$(GO) test -run '^$$' -bench BenchmarkPartitionSmall -benchtime 1x .

# bench-scaling is the CI gate for partitioner scaling: it regenerates
# BENCH_partition.json and fails if the multi-worker speedup on nl/K=64
# drops below the floor (default 1.8x, override with
# FINEGRAIN_SCALING_FLOOR=2.5 make bench-scaling). Hosts with a single
# CPU run the sweep but skip enforcement — no speedup is physically
# possible there; the JSON records gomaxprocs so readers can tell.
FINEGRAIN_SCALING_FLOOR ?= 1.8
bench-scaling:
	FINEGRAIN_SCALING_FLOOR=$(FINEGRAIN_SCALING_FLOOR) \
		$(GO) test -run '^$$' -bench BenchmarkPartitionWorkers -benchtime 1x .

# bench-spmv regenerates BENCH_spmv.json: per-call spmv.Run against
# Exec on a reused Plan (nl at paper size, K=64), asserting zero
# steady-state allocations on the reused path.
bench-spmv:
	$(GO) test -run '^$$' -bench BenchmarkSpMVPlan -benchtime 1x .
