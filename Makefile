GO ?= go

.PHONY: ci fmt vet test race e2e-fleet bench bench-quick bench-scaling bench-spmv bench-block bench-block-smoke bench-locality bench-locality-smoke bench-spgemm bench-spgemm-smoke build doc-check

ci: doc-check build race e2e-fleet bench-locality-smoke bench-block-smoke bench-spgemm-smoke

build:
	$(GO) build ./...
	$(GO) build -o /dev/null ./cmd/partserverd

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# doc-check keeps the documentation honest: gofmt + vet, the
# metrics ↔ OBSERVABILITY.md drift guard, and the model-registry ↔
# README/EXPERIMENTS.md drift guard.
doc-check: fmt vet
	$(GO) test -run 'TestMetricsDocumented' ./internal/partserver/
	$(GO) test -run 'TestDocsModelNames|TestDocsModelSurface|TestDocsLocalitySurface|TestDocsBlockSurface' .

test:
	$(GO) test ./...

# race covers the concurrent subsystems, including the partition
# server's end-to-end test (in-process daemon, concurrent duplicate
# submissions, graceful drain) and the real SpMV kernel's bitwise
# determinism at worker counts beyond GOMAXPROCS.
race:
	$(GO) test -race ./internal/hgpart/ ./internal/spmv/ ./internal/partserver/ ./internal/kernel/ ./internal/reorder/ ./internal/mediumgrain/ ./internal/spgemm/
	$(GO) test -race -run 'TestLocality|TestMediumGrain|TestAuto' .
	$(GO) test ./...

# e2e-fleet boots two-replica fleets under the race detector: a shared
# store directory (replica B serves A's computation, a restarted A
# still has it — zero recomputation, verified by the partitions
# counter), consistent-hash routing to the owner, and local fallback
# when the owner is down.
e2e-fleet:
	$(GO) test -race -count=1 -run 'TestFleet' ./internal/partserver/

# bench regenerates BENCH_partition.json: the Workers sweep of the
# multilevel partitioner (time, allocs/op, bytes/op) on the nl matrix
# at K=64 and ken-11 at K=16, both at paper size.
bench:
	$(GO) test -run '^$$' -bench BenchmarkPartitionWorkers -benchtime 1x .

# bench-quick is the seconds-long variant for iterating on the hot
# path: one small matrix, no JSON artifact.
bench-quick:
	$(GO) test -run '^$$' -bench BenchmarkPartitionSmall -benchtime 1x .

# bench-scaling is the CI gate for partitioner scaling: it regenerates
# BENCH_partition.json and fails if the multi-worker speedup on nl/K=64
# drops below the floor (default 1.8x, override with
# FINEGRAIN_SCALING_FLOOR=2.5 make bench-scaling). Hosts with a single
# CPU run the sweep but skip enforcement — no speedup is physically
# possible there; the JSON records gomaxprocs so readers can tell.
FINEGRAIN_SCALING_FLOOR ?= 1.8
bench-scaling:
	FINEGRAIN_SCALING_FLOOR=$(FINEGRAIN_SCALING_FLOOR) \
		$(GO) test -run '^$$' -bench BenchmarkPartitionWorkers -benchtime 1x .

# bench-spmv regenerates BENCH_spmv.json: per-call spmv.Run against
# Exec on a reused Plan (nl at paper size, K=64), asserting zero
# steady-state allocations on the reused path.
bench-spmv:
	$(GO) test -run '^$$' -bench BenchmarkSpMVPlan -benchtime 1x .

# bench-block regenerates BENCH_block.json: one ExecBlock over N
# stacked right-hand sides against N single Execs on the same reused
# plan (nl at paper size, K=64, N in 1/4/8/16). The run itself asserts
# the block path's message count equals a single multiply's at every
# width; the wall-clock speedup gate (default 1.0x, override with
# FINEGRAIN_BLOCK_FLOOR=1.2 make bench-block) is enforced only on
# hosts with GOMAXPROCS >= 2, mirroring bench-locality.
FINEGRAIN_BLOCK_FLOOR ?= 1.0
bench-block:
	FINEGRAIN_BLOCK_FLOOR=$(FINEGRAIN_BLOCK_FLOOR) \
		$(GO) test -run '^$$' -bench BenchmarkBlockSpMV -benchtime 1x .

# bench-block-smoke is the ci wiring check: one iteration per batch
# width on a shrunken matrix, no artifact, no gate — but the message
# equality assertion still runs.
bench-block-smoke:
	FINEGRAIN_BLOCK_SMOKE=1 \
		$(GO) test -run '^$$' -bench BenchmarkBlockSpMV -benchtime 1x .

# bench-locality regenerates BENCH_locality.json: wall-clock ns/op and
# GFLOP/s of the real multithreaded kernel on nl (K=8), ken-11 (K=64)
# and finan512 (K=32) at paper size, natural order vs. the locality
# model's cache-blocking permutation. The speedup gate (default 1.0x, override
# with FINEGRAIN_LOCALITY_FLOOR=1.05 make bench-locality) is enforced
# only on hosts with GOMAXPROCS >= 2, mirroring bench-scaling; the JSON
# records gomaxprocs either way.
FINEGRAIN_LOCALITY_FLOOR ?= 1.0
bench-locality:
	FINEGRAIN_LOCALITY_FLOOR=$(FINEGRAIN_LOCALITY_FLOOR) \
		$(GO) test -run '^$$' -bench BenchmarkLocality -benchtime 1x .

# bench-locality-smoke is the ci wiring check: one iteration per layout
# on shrunken matrices, no artifact, no gate.
bench-locality-smoke:
	FINEGRAIN_LOCALITY_SMOKE=1 \
		$(GO) test -run '^$$' -bench BenchmarkLocality -benchtime 1x .

# bench-spgemm regenerates BENCH_spgemm.json: both SpGEMM hypergraph
# models (fine-grain elementwise and 1D rowwise) partitioning C = A·A
# on ken-11 and cq9 at K in {4, 16}, with the simulated Sparse-SUMMA
# executor re-asserting in every cell that realized words and messages
# equal the model's cutsize-derived prediction.
bench-spgemm:
	$(GO) run ./cmd/experiments -spgemmbench -scale 0.05 -k 4,16 -quiet

# bench-spgemm-smoke is the ci wiring check: shrunken matrices, one K,
# no artifact — the per-cell exactness assertions still run.
bench-spgemm-smoke:
	$(GO) run ./cmd/experiments -spgemmbench -scale 0.02 -k 4 -json "" -quiet
