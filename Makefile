GO ?= go

.PHONY: ci fmt vet test race bench build

ci: fmt vet build race

build:
	$(GO) build ./...
	$(GO) build -o /dev/null ./cmd/partserverd

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race covers the concurrent subsystems, including the partition
# server's end-to-end test (in-process daemon, concurrent duplicate
# submissions, graceful drain).
race:
	$(GO) test -race ./internal/hgpart/ ./internal/spmv/ ./internal/partserver/
	$(GO) test ./...

# bench regenerates BENCH_partition.json: the Workers sweep of the
# multilevel partitioner on the largest catalog matrix at K=64.
bench:
	$(GO) test -run '^$$' -bench BenchmarkPartitionWorkers -benchtime 1x .
