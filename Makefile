GO ?= go

.PHONY: ci fmt vet test race bench build

ci: fmt vet race

build:
	$(GO) build ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/hgpart/ ./internal/spmv/
	$(GO) test ./...

# bench regenerates BENCH_partition.json: the Workers sweep of the
# multilevel partitioner on the largest catalog matrix at K=64.
bench:
	$(GO) test -run '^$$' -bench BenchmarkPartitionWorkers -benchtime 1x .
