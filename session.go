package finegrain

import (
	"errors"

	"finegrain/internal/solver"
	"finegrain/internal/spmv"
)

// ExecOptions tunes one multiply executed through the public API
// (Session, Multiplier, LocalMultiplier). The zero value is always
// valid.
type ExecOptions struct {
	// Workers bounds the execution goroutines (0 = the session default,
	// then GOMAXPROCS). Results are byte-identical for every value.
	Workers int
}

// SolveOptions configures one Session.Solve call (block conjugate
// gradient over 1..N right-hand sides): tolerance, iteration bound,
// workers, tracing, and the per-iteration residual callback the
// partition server streams NDJSON from.
type SolveOptions = solver.BlockCGOptions

// SolveResult reports a Session.Solve outcome: per-RHS solutions,
// iteration counts, residuals and convergence flags, plus the solve's
// amortized communication accounting.
type SolveResult = solver.BlockCGResult

// SessionOptions configures NewSession.
type SessionOptions struct {
	// Workers is the default goroutine bound for every operation on the
	// session (0 = GOMAXPROCS); per-call ExecOptions.Workers overrides
	// it. Results are byte-identical for every value.
	Workers int
	// Trace, when non-nil, records a "session.open" span for the
	// compile and the plan/exec/solve spans of everything run through
	// the session. Nil disables tracing at zero cost.
	Trace *Trace
	// CompileLocal additionally compiles the decomposition's
	// cache-blocking permutation into a real-hardware kernel plan
	// (Reorder + LocalMultiplier), served by MultiplyLocal and
	// MultiplyLocalBlock. Off by default: the simulator plan alone
	// answers every Multiply/Solve call.
	CompileLocal bool
}

// Session is a decomposition compiled once and held open for many
// multiplies and solves — the serving regime the repository is built
// around: one cached decomposition, millions of right-hand sides. It
// bundles the Decomposition, the simulator Plan (communication-exact
// multiplies and block-CG solves) and, optionally, the locality kernel
// Plan (real-hardware multiplies) behind one handle.
//
// The block entry points (MultiplyBlock, Solve with n > 1) carry N
// right-hand sides through one expand/fold cycle: the message count
// stays that of a single multiply while each message widens to N
// words — the amortization BlockCounters quantifies.
//
// A Session is not safe for concurrent calls. Close releases the
// compiled plans; dropping the Session without Close releases them via
// finalizers.
type Session struct {
	dec     *Decomposition
	pl      *spmv.Plan
	local   *LocalMultiplier // nil unless SessionOptions.CompileLocal
	workers int
	trace   *Trace
	closed  bool
}

// NewSession compiles dec for repeated execution. The simulator plan
// is always compiled; SessionOptions.CompileLocal adds the locality
// kernel plan. Failures are reported as *Error values.
func NewSession(dec *Decomposition, o SessionOptions) (*Session, error) {
	const op = "NewSession"
	if dec == nil || dec.Assignment == nil {
		return nil, &Error{Code: BadMatrix, Op: op, Msg: "nil decomposition"}
	}
	sp := o.Trace.Begin("finegrain", "session.open").
		Arg("k", int64(dec.Assignment.K)).Arg("local", boolArg(o.CompileLocal))
	defer sp.End()
	pl, err := spmv.NewPlanTraced(dec.Assignment, o.Trace)
	if err != nil {
		return nil, classify(op, err)
	}
	s := &Session{dec: dec, pl: pl, workers: o.Workers, trace: o.Trace}
	if o.CompileLocal {
		_, perm, err := Reorder(dec, Options{Trace: o.Trace})
		if err != nil {
			pl.Close()
			return nil, err
		}
		s.local, err = NewLocalMultiplierTraced(dec.Assignment.A, perm, o.Trace)
		if err != nil {
			pl.Close()
			return nil, classify(op, err)
		}
	}
	return s, nil
}

func boolArg(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Decomposition returns the decomposition the session serves.
func (s *Session) Decomposition() *Decomposition { return s.dec }

// K returns the simulated processor count.
func (s *Session) K() int { return s.pl.K() }

// Counters returns the per-RHS communication profile of one multiply
// (fixed by the compiled routing table; Y is nil).
func (s *Session) Counters() SpMVResult { return s.pl.Counters() }

// BlockCounters returns the traffic one MultiplyBlock call with n
// right-hand sides realizes: single-multiply message counts, n× the
// words.
func (s *Session) BlockCounters(n int) SpMVResult { return s.pl.BlockCounters(n) }

func (s *Session) execWorkers(o ExecOptions) int {
	if o.Workers != 0 {
		return o.Workers
	}
	return s.workers
}

func (s *Session) check() error {
	if s.closed {
		return errors.New("finegrain: operation on a closed Session")
	}
	return nil
}

// Multiply executes y = A·x on the simulator plan into a
// caller-provided slice, allocating nothing in steady state.
func (s *Session) Multiply(x, y []float64, o ExecOptions) error {
	if err := s.check(); err != nil {
		return err
	}
	return s.pl.Exec(x, y, spmv.ExecOptions{Workers: s.execWorkers(o)})
}

// MultiplyBlock executes Y = A·X for n stacked right-hand sides
// (vector v is X[v*cols : (v+1)*cols], same layout over rows for Y) in
// one expand/fold cycle, bitwise equal to n Multiply calls.
func (s *Session) MultiplyBlock(X, Y []float64, n int, o ExecOptions) error {
	if err := s.check(); err != nil {
		return err
	}
	return s.pl.ExecBlock(X, Y, n, spmv.ExecOptions{Workers: s.execWorkers(o)})
}

// MultiplyLocal executes y = A·x on the locality kernel plan (vectors
// in original index space). The session must have been opened with
// CompileLocal.
func (s *Session) MultiplyLocal(x, y []float64, o ExecOptions) error {
	if err := s.check(); err != nil {
		return err
	}
	if s.local == nil {
		return errors.New("finegrain: session opened without CompileLocal")
	}
	return s.local.Exec(x, y, o)
}

// MultiplyLocalBlock is MultiplyLocal over n stacked right-hand sides,
// reusing each cached matrix block across the whole batch.
func (s *Session) MultiplyLocalBlock(X, Y []float64, n int, o ExecOptions) error {
	if err := s.check(); err != nil {
		return err
	}
	if s.local == nil {
		return errors.New("finegrain: session opened without CompileLocal")
	}
	return s.local.ExecBlock(X, Y, n, o)
}

// Solve runs block conjugate gradient over n stacked right-hand sides
// (B holds vector v at B[v*rows : (v+1)*rows]) on the simulator plan,
// sharing one block multiply per iteration across the batch. Each
// right-hand side's trajectory is bitwise identical to a solo solve at
// any worker count; see SolveResult for the per-RHS outcomes and the
// amortized traffic accounting. A is assumed symmetric positive
// definite; non-convergence is reported in the result, not as an
// error.
func (s *Session) Solve(B []float64, n int, o SolveOptions) (*SolveResult, error) {
	if err := s.check(); err != nil {
		return nil, err
	}
	if o.Workers == 0 {
		o.Workers = s.workers
	}
	if o.Trace == nil {
		o.Trace = s.trace
	}
	return solver.BlockCGOnPlan(s.pl, s.pl.K(), B, n, o)
}

// Close releases the session's compiled plans. Idempotent; operations
// after Close return an error.
func (s *Session) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	s.pl.Close()
	if s.local != nil {
		s.local.Close()
	}
	return nil
}
